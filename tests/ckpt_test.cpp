#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/storage.h"
#include "core/resume.h"
#include "costmodel/analytic.h"
#include "faults/storage_faults.h"
#include "model/transformer.h"
#include "runtime/train_session.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace autopipe::ckpt {
namespace {

/// Same CPU-scale transformer the fault lab trains: 3 layers -> 8 blocks,
/// enough for a 3-stage pipeline with room to reshard onto 2 or 4.
model::TinySpec tiny_spec() {
  model::TinySpec s;
  s.layers = 3;
  s.hidden = 16;
  s.heads = 2;
  s.vocab = 32;
  s.seq = 4;
  return s;
}

costmodel::ModelConfig tiny_config() {
  const model::TinySpec t = tiny_spec();
  costmodel::ModelSpec spec;
  spec.name = "tiny";
  spec.num_layers = t.layers;
  spec.hidden = t.hidden;
  spec.heads = t.heads;
  spec.vocab = t.vocab;
  spec.default_seq = t.seq;
  spec.causal = t.causal;
  return costmodel::build_model_config(spec, {4, 0, true});
}

/// A deterministic TrainState without running the runtime: fresh model
/// init, no optimizer state yet, a seeded data RNG.
TrainState synthetic_state(int step, const std::vector<int>& counts = {2, 3,
                                                                       3}) {
  model::TransformerModel model(tiny_spec());
  util::Rng rng(0x5eedULL + static_cast<std::uint64_t>(step));
  return capture_train_state(model, {}, rng.state(), step, counts, 0);
}

TEST(CkptFormat, StepDirNameIsZeroPadded) {
  EXPECT_EQ(step_dir_name(12), "step-00000012");
  EXPECT_EQ(step_dir_name(0), "step-00000000");
}

TEST(CkptStorage, MemStorageAtomicWriteAndList) {
  MemStorage mem;
  mem.create_dirs("ck/step-00000001");
  atomic_write(mem, "ck/step-00000001/MANIFEST", "hello");
  EXPECT_EQ(mem.read_file("ck/step-00000001/MANIFEST"), "hello");
  EXPECT_FALSE(mem.has_file("ck/step-00000001/MANIFEST.tmp"));
  const auto names = mem.list_dir("ck/step-00000001");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "MANIFEST");
  EXPECT_THROW(mem.read_file("ck/absent"), StorageError);
}

TEST(CkptRoundTrip, MemStorage) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  const TrainState state = synthetic_state(3);
  writer.write(state);

  CheckpointReader reader(mem, "ck");
  const RestoreResult restored = reader.restore();
  EXPECT_EQ(restored.state, state);
  ASSERT_FALSE(restored.candidates.empty());
  EXPECT_TRUE(restored.candidates.back().valid);
}

TEST(CkptRoundTrip, PosixStorage) {
  PosixStorage posix;
  const std::string dir = testing::TempDir() + "/ckpt_posix_roundtrip";
  CheckpointWriter writer(posix, dir);
  const TrainState state = synthetic_state(7);
  writer.write(state);
  CheckpointReader reader(posix, dir);
  EXPECT_EQ(reader.restore().state, state);
}

TEST(CkptWriter, RejectsCountsNotCoveringBlocks) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  TrainState state = synthetic_state(1);
  state.counts = {2, 2};  // 8 blocks, counts sum to 4
  EXPECT_THROW(writer.write(state), std::invalid_argument);
  EXPECT_THROW(CheckpointWriter(mem, "ck", {0}), std::invalid_argument);
}

TEST(CkptReader, EmptyDirThrowsNotFound) {
  MemStorage mem;
  CheckpointReader reader(mem, "ck");
  try {
    reader.restore();
    FAIL() << "restored from nothing";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.kind(), CkptErrorKind::NotFound);
  }
}

TEST(CkptReader, NewestValidWinsOverCorruptNewest) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  const TrainState s2 = synthetic_state(2);
  const TrainState s4 = synthetic_state(4);
  writer.write(s2);
  writer.write(s4);

  // Flip one bit inside the newest step's record payload.
  std::string& rec = mem.bytes("ck/step-00000004/stage-001.rec");
  rec[rec.size() / 2] ^= 0x01;

  CheckpointReader reader(mem, "ck");
  const RestoreResult restored = reader.restore();
  EXPECT_EQ(restored.state, s2);
  ASSERT_EQ(restored.candidates.size(), 2u);
  EXPECT_FALSE(restored.candidates[0].valid);
  EXPECT_NE(restored.candidates[0].reason.find("CRC"), std::string::npos)
      << restored.candidates[0].reason;
  EXPECT_TRUE(restored.candidates[1].valid);
}

TEST(CkptReader, TornRecordFallsBack) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  const TrainState s2 = synthetic_state(2);
  writer.write(s2);
  writer.write(synthetic_state(4));
  std::string& rec = mem.bytes("ck/step-00000004/stage-000.rec");
  rec.resize(rec.size() / 2);  // torn mid-write
  CheckpointReader reader(mem, "ck");
  EXPECT_EQ(reader.restore().state, s2);
}

TEST(CkptReader, TornManifestFallsBack) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  const TrainState s2 = synthetic_state(2);
  writer.write(s2);
  writer.write(synthetic_state(4));
  std::string& manifest = mem.bytes("ck/step-00000004/MANIFEST");
  manifest.resize(manifest.size() - 5);
  CheckpointReader reader(mem, "ck");
  EXPECT_EQ(reader.restore().state, s2);
}

TEST(CkptReader, TamperedCountsRejectedByFingerprint) {
  // Rewrite the manifest's counts line AND fix the trailing whole-file CRC:
  // the scheme fingerprint still refuses, because it binds the counts the
  // writer actually used.
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  writer.write(synthetic_state(2));
  std::string& manifest = mem.bytes("ck/step-00000002/MANIFEST");
  const auto counts_pos = manifest.find("counts 2 3 3");
  ASSERT_NE(counts_pos, std::string::npos);
  manifest.replace(counts_pos, 12, "counts 3 2 3");
  const auto crc_pos = manifest.rfind("crc ");
  ASSERT_NE(crc_pos, std::string::npos);
  manifest = manifest.substr(0, crc_pos);
  manifest += "crc " + util::crc32_hex(util::crc32(manifest)) + "\n";

  CheckpointReader reader(mem, "ck");
  try {
    reader.restore();
    FAIL() << "tampered counts restored";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.kind(), CkptErrorKind::Corrupt);
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
}

TEST(CkptReader, AllCorruptThrowsCorrupt) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  writer.write(synthetic_state(2));
  writer.write(synthetic_state(4));
  mem.bytes("ck/step-00000002/stage-002.rec")[40] ^= 0x10;
  mem.bytes("ck/step-00000004/stage-002.rec")[40] ^= 0x10;
  CheckpointReader reader(mem, "ck");
  try {
    reader.restore();
    FAIL() << "corrupt state restored";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.kind(), CkptErrorKind::Corrupt);
  }
}

TEST(CkptReader, ForeignFormatVersionThrowsVersion) {
  MemStorage mem;
  CheckpointWriter writer(mem, "ck");
  writer.write(synthetic_state(2));
  // The record's format-version field is bytes [4, 8) of the frame.
  for (const char* rec :
       {"ck/step-00000002/stage-000.rec", "ck/step-00000002/stage-001.rec",
        "ck/step-00000002/stage-002.rec"}) {
    mem.bytes(rec)[4] = 99;
  }
  CheckpointReader reader(mem, "ck");
  try {
    reader.restore();
    FAIL() << "foreign version restored";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.kind(), CkptErrorKind::Version);
  }
}

TEST(CkptWriter, InjectedRenameFailureLeavesOldCheckpointIntact) {
  MemStorage mem;
  faults::StorageFaultPlan plan;
  plan.faults.push_back({faults::StorageFault::Kind::RenameFail, 1, 0});
  faults::FaultyStorage faulty(mem, plan);
  CheckpointWriter writer(faulty, "ck");
  const TrainState s2 = synthetic_state(2);
  writer.write(s2);                                     // rename #0: commits
  EXPECT_THROW(writer.write(synthetic_state(4)), StorageError);  // rename #1
  EXPECT_EQ(faulty.injected(), 1);

  // The failed step never committed: no MANIFEST, invisible to the reader.
  EXPECT_FALSE(mem.has_file("ck/step-00000004/MANIFEST"));
  CheckpointReader reader(mem, "ck");
  EXPECT_EQ(reader.committed_steps(), std::vector<int>{2});
  EXPECT_EQ(reader.restore().state, s2);
}

TEST(CkptWriter, RetentionKeepsNewestK) {
  MemStorage mem;
  WriterOptions opts;
  opts.keep_last = 2;
  CheckpointWriter writer(mem, "ck", opts);
  writer.write(synthetic_state(1));
  writer.write(synthetic_state(2));
  writer.write(synthetic_state(3));
  CheckpointReader reader(mem, "ck");
  EXPECT_EQ(reader.committed_steps(), (std::vector<int>{3, 2}));
  EXPECT_FALSE(mem.has_file("ck/step-00000001/MANIFEST"));
  EXPECT_FALSE(mem.has_file("ck/step-00000001/stage-000.rec"));
}

TEST(CkptApply, MismatchedModelThrowsTyped) {
  const TrainState state = synthetic_state(1);
  model::TinySpec small = tiny_spec();
  small.layers = 2;  // 6 blocks instead of 8
  model::TransformerModel other(small);
  try {
    apply_train_state(state, other);
    FAIL() << "applied to a different architecture";
  } catch (const CkptError& e) {
    EXPECT_EQ(e.kind(), CkptErrorKind::Mismatch);
  }
}

TEST(CkptApply, RoundTripsModelAndOptimizerExactly) {
  model::TransformerModel model(tiny_spec());
  util::Rng rng(11);
  const TrainState state =
      capture_train_state(model, {}, rng.state(), 0, {2, 3, 3}, 0);
  model::TransformerModel fresh(tiny_spec());
  apply_train_state(state, fresh);
  const TrainState again =
      capture_train_state(fresh, {}, rng.state(), 0, {2, 3, 3}, 0);
  EXPECT_EQ(again, state);
}

// --------------------------------------------------------- resume semantics

runtime::TrainSessionOptions session_options(Storage* storage,
                                             const std::string& dir,
                                             int interval) {
  runtime::TrainSessionOptions o;
  o.spec = tiny_spec();
  o.counts = {2, 3, 3};
  o.ckpt_dir = dir;
  o.ckpt_interval = interval;
  o.storage = storage;
  return o;
}

TEST(CkptResume, SameShapeResumeIsBitIdentical) {
  MemStorage mem;
  auto opts = session_options(&mem, "ck", 2);

  runtime::TrainSession first(opts);
  for (int i = 0; i < 4; ++i) first.step();
  ASSERT_EQ(first.checkpoints_written(), 2);

  core::ResumeOptions ropt;  // same device count
  const auto resumed = core::resume_from_checkpoint(tiny_config(), mem, "ck",
                                                    ropt);
  EXPECT_FALSE(resumed.resharded);
  EXPECT_EQ(resumed.state.step, 4);
  EXPECT_EQ(resumed.counts, opts.counts);

  auto ropts = opts;
  ropts.counts = resumed.counts;
  runtime::TrainSession continued(ropts, resumed.state);
  while (continued.iteration() < 8) continued.step();

  auto gopts = opts;
  gopts.ckpt_dir.clear();
  gopts.ckpt_interval = 0;
  runtime::TrainSession golden(gopts);
  for (int i = 0; i < 8; ++i) golden.step();

  // Losses after the resume point are bit-equal, and so is the full final
  // state (parameters, Adam moments, data stream, schedule position).
  ASSERT_EQ(continued.losses().size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(continued.losses()[static_cast<std::size_t>(i)],
              golden.losses()[static_cast<std::size_t>(4 + i)])
        << "step " << 5 + i;
  }
  EXPECT_EQ(continued.capture(), golden.capture());
}

double max_param_diff(const TrainState& a, const TrainState& b) {
  EXPECT_EQ(a.blocks.size(), b.blocks.size());
  double worst = 0;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    for (std::size_t p = 0; p < a.blocks[i].params.size(); ++p) {
      const auto& va = a.blocks[i].params[p].value;
      const auto& vb = b.blocks[i].params[p].value;
      EXPECT_EQ(va.size(), vb.size());
      for (std::size_t k = 0; k < va.size(); ++k) {
        worst = std::max(worst, std::fabs(static_cast<double>(va[k]) -
                                          static_cast<double>(vb[k])));
      }
    }
  }
  return worst;
}

class CkptElasticResume : public testing::TestWithParam<int> {};

TEST_P(CkptElasticResume, ReshardedResumeStaysGradientExact) {
  const int target = GetParam();
  MemStorage mem;
  auto opts = session_options(&mem, "ck", 2);
  runtime::TrainSession first(opts);
  for (int i = 0; i < 4; ++i) first.step();

  core::ResumeOptions ropt;
  ropt.num_gpus = target;
  const auto resumed = core::resume_from_checkpoint(tiny_config(), mem, "ck",
                                                    ropt);
  EXPECT_TRUE(resumed.resharded);
  EXPECT_EQ(static_cast<int>(resumed.counts.size()), target);
  int covered = 0;
  for (int c : resumed.counts) covered += c;
  EXPECT_EQ(covered, 8);

  auto ropts = opts;
  ropts.counts = resumed.counts;
  ropts.ckpt_dir.clear();
  ropts.ckpt_interval = 0;
  runtime::TrainSession continued(ropts, resumed.state);
  while (continued.iteration() < 8) continued.step();

  auto gopts = opts;
  gopts.ckpt_dir.clear();
  gopts.ckpt_interval = 0;
  runtime::TrainSession golden(gopts);
  for (int i = 0; i < 8; ++i) golden.step();

  // Per-block state is partition-independent, so training on the new
  // partition computes the same gradients (tolerance covers accumulation
  // order, which in practice matches bit-exactly on this runtime).
  EXPECT_LE(max_param_diff(continued.capture(), golden.capture()), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(NMinusOneAndNPlusOne, CkptElasticResume,
                         testing::Values(2, 4));

TEST(CkptResume, FailedCheckpointNeverKillsTraining) {
  MemStorage mem;
  faults::StorageFaultPlan plan;
  plan.faults.push_back({faults::StorageFault::Kind::RenameFail, 0, 0});
  faults::FaultyStorage faulty(mem, plan);
  auto opts = session_options(&faulty, "ck", 2);
  runtime::TrainSession session(opts);
  for (int i = 0; i < 4; ++i) session.step();
  EXPECT_EQ(session.iteration(), 4);          // training survived
  EXPECT_EQ(session.checkpoint_failures(), 1);  // step-2 commit failed
  EXPECT_EQ(session.checkpoints_written(), 1);  // step-4 landed
  EXPECT_FALSE(session.last_checkpoint_error().empty());
  CheckpointReader reader(mem, "ck");
  EXPECT_EQ(reader.committed_steps(), std::vector<int>{4});
}

// ------------------------------------------------------------------- fuzz

TEST(CkptFuzz, SeededFaultPlansNeverRestoreCorruptState) {
  // Build a handful of genuine training states once (the expensive part).
  std::vector<TrainState> states;
  {
    runtime::TrainSessionOptions opts;
    opts.spec = tiny_spec();
    opts.counts = {2, 3, 3};
    runtime::TrainSession session(opts);
    for (int i = 0; i < 4; ++i) {
      session.step();
      states.push_back(session.capture());
    }
  }

  faults::StorageFaultDistribution dist;
  dist.torn_write_prob = 0.15;
  dist.bit_flip_prob = 0.15;
  dist.short_read_prob = 0.15;
  dist.rename_fail_prob = 0.25;

  int restores = 0, typed_failures = 0, injected_total = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    MemStorage mem;
    // Per step: 3 records + 1 manifest temp = 4 writes, 1 commit rename.
    const auto plan =
        faults::sample_storage_fault_plan(dist, 16, 16, 4, seed);
    faults::FaultyStorage faulty(mem, plan);

    CheckpointWriter writer(faulty, "ck", {10});
    std::vector<int> committed;
    for (const TrainState& s : states) {
      try {
        writer.write(s);
        committed.push_back(s.step);
      } catch (const StorageError&) {
        // The write was interrupted -- older checkpoints must be intact.
      }
    }
    injected_total += faulty.injected();

    // THE crash-consistency property: under any fault plan, restore either
    // returns a state bit-identical to one that was written, or raises a
    // typed CkptError. It never fabricates or truncates state.
    const auto is_committed = [&](int step) {
      return std::find(committed.begin(), committed.end(), step) !=
             committed.end();
    };
    const auto state_for = [&](int step) -> const TrainState& {
      return states[static_cast<std::size_t>(step - 1)];  // steps are 1..4
    };

    CheckpointReader reader(faulty, "ck");
    try {
      const RestoreResult restored = reader.restore();
      ++restores;
      ASSERT_TRUE(is_committed(restored.state.step)) << "seed " << seed;
      EXPECT_EQ(restored.state, state_for(restored.state.step))
          << "seed " << seed;
    } catch (const CkptError&) {
      ++typed_failures;  // typed refusal is the only acceptable failure
    }

    // And through clean storage (no read faults): restore lands on a
    // committed checkpoint bit-exactly, or refuses typed -- NotFound only
    // when no write ever committed.
    CheckpointReader clean(mem, "ck");
    try {
      const RestoreResult restored = clean.restore();
      ASSERT_TRUE(is_committed(restored.state.step)) << "seed " << seed;
      EXPECT_EQ(restored.state, state_for(restored.state.step))
          << "seed " << seed;
    } catch (const CkptError& e) {
      if (e.kind() == CkptErrorKind::NotFound) {
        EXPECT_TRUE(committed.empty()) << "seed " << seed << ": " << e.what();
      }
      // Corrupt is legitimate with commits: a bit flip can silently poison
      // every committed step. The point is it was *detected*.
    } catch (const StorageError& e) {
      FAIL() << "seed " << seed << ": untyped failure " << e.what();
    }
  }
  // The sweep must exercise both paths, or the property is vacuous.
  EXPECT_GT(injected_total, 0);
  EXPECT_GT(restores, 0);
  (void)typed_failures;
}

// -------------------------------------------------------- bit-flip sweep

/// Storage decorator that records the payload size of every write_file call,
/// so the sweep below can aim one BitFlip at every (op, byte) coordinate of
/// a checkpoint generation without hard-coding the on-disk format.
class RecordingStorage final : public Storage {
 public:
  explicit RecordingStorage(Storage& inner) : inner_(inner) {}
  void create_dirs(const std::string& path) override {
    inner_.create_dirs(path);
  }
  void write_file(const std::string& path, std::string_view bytes) override {
    sizes_.push_back(bytes.size());
    inner_.write_file(path, bytes);
  }
  void rename_file(const std::string& from, const std::string& to) override {
    inner_.rename_file(from, to);
  }
  std::string read_file(const std::string& path) override {
    return inner_.read_file(path);
  }
  bool exists(const std::string& path) override { return inner_.exists(path); }
  std::vector<std::string> list_dir(const std::string& dir) override {
    return inner_.list_dir(dir);
  }
  void remove_file(const std::string& path) override {
    inner_.remove_file(path);
  }
  void remove_dir(const std::string& path) override { inner_.remove_dir(path); }
  const std::vector<std::size_t>& sizes() const { return sizes_; }

 private:
  Storage& inner_;
  std::vector<std::size_t> sizes_;
};

/// Smallest model the checkpoint format supports (1 layer -> 4 blocks) so
/// the exhaustive byte sweep stays cheap.
model::TinySpec micro_spec() {
  model::TinySpec s;
  s.layers = 1;
  s.hidden = 4;
  s.heads = 1;
  s.vocab = 8;
  s.seq = 2;
  return s;
}

TrainState micro_state(int step, const std::vector<int>& counts) {
  model::TransformerModel model(micro_spec());
  util::Rng rng(0x5eedULL + static_cast<std::uint64_t>(step));
  return capture_train_state(model, {}, rng.state(), step, counts, 0);
}

TEST(CkptBitFlipSweep, EveryOffsetFallsBackToPriorGeneration) {
  // Flip one bit at EVERY byte offset of the newest generation's payloads
  // (each record and the manifest). Newest-valid-wins must reject the
  // poisoned step-4 candidate with a diagnosis and fall back to step 2
  // bit-exactly, at every single offset -- no byte of the format may be
  // outside checksum coverage.
  const std::vector<int> counts = {2, 2};
  const TrainState gen1 = micro_state(2, counts);
  const TrainState gen2 = micro_state(4, counts);

  // Recording pass: learn how many write ops one checkpoint takes and the
  // payload size of each of gen2's ops (2 records + MANIFEST for 2 stages).
  std::size_t ops_per_ckpt = 0;
  std::vector<std::size_t> sizes;
  {
    MemStorage mem;
    RecordingStorage rec(mem);
    CheckpointWriter writer(rec, "ck");
    writer.write(gen1);
    ops_per_ckpt = rec.sizes().size();
    writer.write(gen2);
    sizes.assign(rec.sizes().begin() + static_cast<long>(ops_per_ckpt),
                 rec.sizes().end());
  }
  ASSERT_EQ(sizes.size(), 3u);  // 2 stage records + MANIFEST

  int swept = 0;
  for (std::size_t op = 0; op < sizes.size(); ++op) {
    for (std::size_t byte = 0; byte < sizes[op]; ++byte) {
      MemStorage mem;
      faults::StorageFaultPlan plan;
      plan.faults.push_back({faults::StorageFault::Kind::BitFlip,
                             static_cast<int>(ops_per_ckpt + op), byte});
      faults::FaultyStorage faulty(mem, plan);
      CheckpointWriter writer(faulty, "ck");
      writer.write(gen1);
      writer.write(gen2);
      ASSERT_EQ(faulty.injected(), 1) << "op " << op << " byte " << byte;

      CheckpointReader reader(mem, "ck");
      const RestoreResult restored = reader.restore();
      ++swept;
      ASSERT_EQ(restored.state.step, 2) << "op " << op << " byte " << byte;
      ASSERT_EQ(restored.state, gen1) << "op " << op << " byte " << byte;

      // Per-candidate diagnostics: the poisoned newest generation is listed
      // first with a non-empty reason; the winner is last and valid.
      ASSERT_GE(restored.candidates.size(), 2u);
      const CandidateReport& newest = restored.candidates.front();
      const CandidateReport& winner = restored.candidates.back();
      EXPECT_EQ(newest.step, 4) << "op " << op << " byte " << byte;
      EXPECT_FALSE(newest.valid) << "op " << op << " byte " << byte;
      EXPECT_FALSE(newest.reason.empty()) << "op " << op << " byte " << byte;
      EXPECT_EQ(winner.step, 2);
      EXPECT_TRUE(winner.valid);
    }
  }
  // The property above is per-offset; this guards against a vacuous sweep.
  EXPECT_GT(swept, 100);
}

}  // namespace
}  // namespace autopipe::ckpt
