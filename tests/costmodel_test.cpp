#include <gtest/gtest.h>

#include "costmodel/analytic.h"
#include "costmodel/device.h"
#include "costmodel/memory.h"
#include "costmodel/model_zoo.h"

namespace autopipe::costmodel {
namespace {

// --------------------------------------------------------------- model zoo

TEST(ModelZoo, TableOneParameterCounts) {
  // Table I: 345M / 762M / 1314M / 340M (within a few percent; the paper
  // rounds and the positional table size varies by convention).
  EXPECT_NEAR(param_count(gpt2_345m()) / 1e6, 345, 25);
  EXPECT_NEAR(param_count(gpt2_762m()) / 1e6, 762, 40);
  EXPECT_NEAR(param_count(gpt2_1_3b()) / 1e6, 1314, 70);
  EXPECT_NEAR(param_count(bert_large()) / 1e6, 340, 25);
}

TEST(ModelZoo, TableOneShapes) {
  EXPECT_EQ(gpt2_345m().num_layers, 24);
  EXPECT_EQ(gpt2_345m().hidden, 1024);
  EXPECT_EQ(gpt2_762m().num_layers, 36);
  EXPECT_EQ(gpt2_762m().hidden, 1280);
  EXPECT_EQ(gpt2_1_3b().num_layers, 24);
  EXPECT_EQ(gpt2_1_3b().hidden, 2048);
  EXPECT_EQ(bert_large().num_layers, 24);
  EXPECT_EQ(bert_large().hidden, 1024);
  EXPECT_FALSE(bert_large().causal);
}

TEST(ModelZoo, LookupByName) {
  EXPECT_EQ(model_by_name("gpt2-345m").name, "GPT-2 345M");
  EXPECT_EQ(model_by_name("bert-large").name, "BERT-large");
  EXPECT_THROW(model_by_name("gpt5"), std::invalid_argument);
  EXPECT_EQ(model_zoo().size(), 4u);
}

// ------------------------------------------------------------------ device

TEST(Device, TransferScalesWithBytes) {
  const LinkProfile link = infiniband_100g();
  const double small = transfer_ms(link, 1e6);
  const double large = transfer_ms(link, 1e8);
  EXPECT_GT(large, small);
  // Latency floor dominates tiny messages.
  EXPECT_NEAR(transfer_ms(link, 0), link.latency_ms, 1e-12);
}

TEST(Device, AllreduceProperties) {
  const LinkProfile link = infiniband_100g();
  EXPECT_DOUBLE_EQ(ring_allreduce_ms(link, 1e9, 1), 0.0);
  const double two = ring_allreduce_ms(link, 1e9, 2);
  const double four = ring_allreduce_ms(link, 1e9, 4);
  EXPECT_GT(two, 0.0);
  // Ring volume factor 2(n-1)/n grows with n.
  EXPECT_GT(four, two);
}

TEST(Device, MatmulAndMembound) {
  const DeviceProfile dev = rtx3090();
  EXPECT_NEAR(matmul_ms(dev, dev.matmul_tflops * 1e12), 1000.0, 1e-6);
  EXPECT_NEAR(membound_ms(dev, dev.memband_gbps * 1e9), 1000.0, 1e-6);
}

// ---------------------------------------------------------------- analytic

class AnalyticTest : public testing::Test {
 protected:
  ModelConfig cfg_ = build_model_config(gpt2_345m(), {4, 0, true});
};

TEST_F(AnalyticTest, BlockLayout) {
  // [embedding][attn ffn]*24 [head]
  ASSERT_EQ(cfg_.num_blocks(), 2 * 24 + 2);
  EXPECT_EQ(cfg_.blocks.front().kind, BlockKind::Embedding);
  EXPECT_EQ(cfg_.blocks[1].kind, BlockKind::Attention);
  EXPECT_EQ(cfg_.blocks[2].kind, BlockKind::FFN);
  EXPECT_EQ(cfg_.blocks.back().kind, BlockKind::Head);
  EXPECT_DOUBLE_EQ(cfg_.total_layer_units(), 24.0);
}

TEST_F(AnalyticTest, EmbeddingIsMemoryHeavyComputeLight) {
  // The §I imbalance source: big parameters, negligible compute.
  const Block& emb = cfg_.blocks.front();
  const Block& attn = cfg_.blocks[1];
  EXPECT_GT(emb.param_bytes, attn.param_bytes);
  EXPECT_LT(emb.fwd_ms, attn.fwd_ms / 10);
}

TEST_F(AnalyticTest, HeadIsTheMostExpensiveBlock) {
  const Block& head = cfg_.blocks.back();
  for (const Block& b : cfg_.blocks) {
    EXPECT_LE(b.fwd_ms, head.fwd_ms);
  }
}

TEST_F(AnalyticTest, RecomputeAddsOneForwardToBackward) {
  const ModelConfig no_rc = build_model_config(gpt2_345m(), {4, 0, false});
  for (int i = 1; i < cfg_.num_blocks() - 1; ++i) {
    EXPECT_NEAR(cfg_.blocks[i].bwd_ms,
                no_rc.blocks[i].bwd_ms + no_rc.blocks[i].fwd_ms, 1e-9);
  }
}

TEST_F(AnalyticTest, CostsScaleWithMicroBatch) {
  const ModelConfig big = build_model_config(gpt2_345m(), {8, 0, true});
  EXPECT_NEAR(big.blocks[1].fwd_ms / cfg_.blocks[1].fwd_ms, 2.0, 0.01);
  EXPECT_NEAR(big.comm_ms / cfg_.comm_ms, 2.0, 0.3);  // latency floor
}

TEST_F(AnalyticTest, AttentionAndFFNShareBoundaryVolume) {
  // Sub-layer cuts add no communication (Fig. 3's key property).
  EXPECT_DOUBLE_EQ(cfg_.blocks[1].output_bytes, cfg_.blocks[2].output_bytes);
}

TEST_F(AnalyticTest, DefaultSeqFromSpec) {
  EXPECT_EQ(cfg_.train.seq_len, 1024);
  const ModelConfig bert = build_model_config(bert_large(), {16, 0, true});
  EXPECT_EQ(bert.train.seq_len, 512);
}

TEST_F(AnalyticTest, RejectsEmptyModel) {
  ModelSpec broken = gpt2_345m();
  broken.num_layers = 0;
  EXPECT_THROW(build_model_config(broken, {4, 0, true}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ memory

TEST(Memory, InFlightRulePerSchedule) {
  StageFootprint fp{1e9, 1e8, 1e8};
  const double cap = 1e12;
  // 1F1B at stage 0 of 4: 4 in flight; at stage 3: 1.
  EXPECT_EQ(stage_memory(fp, 0, 4, ScheduleKind::OneFOneB, 8, 1, cap)
                .in_flight_micro_batches,
            4);
  EXPECT_EQ(stage_memory(fp, 3, 4, ScheduleKind::OneFOneB, 8, 1, cap)
                .in_flight_micro_batches,
            1);
  // GPipe keeps everything.
  EXPECT_EQ(stage_memory(fp, 0, 4, ScheduleKind::GPipe, 8, 1, cap)
                .in_flight_micro_batches,
            8);
  // AutoPipe slicing adds no memory (§III-C).
  EXPECT_EQ(stage_memory(fp, 0, 4, ScheduleKind::AutoPipeSliced, 8, 1, cap)
                .total_bytes,
            stage_memory(fp, 0, 4, ScheduleKind::OneFOneB, 8, 1, cap)
                .total_bytes);
}

TEST(Memory, InterleavedHoldsMoreThanOneFOneB) {
  StageFootprint fp{0, 1e8, 0};
  const double cap = 1e12;
  for (int stage = 0; stage < 4; ++stage) {
    const auto plain =
        stage_memory(fp, stage, 4, ScheduleKind::OneFOneB, 32, 1, cap);
    const auto inter =
        stage_memory(fp, stage, 4, ScheduleKind::Interleaved, 32, 2, cap);
    EXPECT_GT(inter.activation_bytes, plain.activation_bytes)
        << "stage " << stage;
  }
}

TEST(Memory, InFlightCappedByMicroBatchCount) {
  StageFootprint fp{0, 1e8, 0};
  const auto e = stage_memory(fp, 0, 8, ScheduleKind::OneFOneB, 4, 1, 1e12);
  EXPECT_EQ(e.in_flight_micro_batches, 4);
}

TEST(Memory, OomFlagAndFitsMemory) {
  StageFootprint heavy{2.5e9, 0, 0};  // 2.5 GB of params -> 22.5 GB state
  const double cap = 16.8 * (1ull << 30);
  EXPECT_TRUE(
      stage_memory(heavy, 0, 1, ScheduleKind::OneFOneB, 1, 1, cap).oom);
  StageFootprint light{1e8, 1e7, 1e7};
  std::vector<StageFootprint> stages{light, light};
  EXPECT_TRUE(fits_memory(stages, ScheduleKind::OneFOneB, 8, 1, cap));
  stages.push_back(heavy);
  EXPECT_FALSE(fits_memory(stages, ScheduleKind::OneFOneB, 8, 1, cap));
}

TEST(Memory, ScheduleKindNames) {
  EXPECT_STREQ(to_string(ScheduleKind::OneFOneB), "1F1B");
  EXPECT_STREQ(to_string(ScheduleKind::Interleaved), "Interleaved-1F1B");
  EXPECT_STREQ(to_string(ScheduleKind::ZeroBubble), "ZeroBubble");
}

TEST(Memory, ParseScheduleKindInvertsToString) {
  for (const ScheduleKind kind :
       {ScheduleKind::OneFOneB, ScheduleKind::GPipe, ScheduleKind::Interleaved,
        ScheduleKind::AutoPipeSliced, ScheduleKind::ZeroBubble}) {
    EXPECT_EQ(parse_schedule_kind(to_string(kind)), kind);
  }
}

TEST(Memory, ParseScheduleKindAcceptsCliSpellings) {
  // Case-insensitive; '-' and '_' are separators, not content.
  EXPECT_EQ(parse_schedule_kind("1f1b"), ScheduleKind::OneFOneB);
  EXPECT_EQ(parse_schedule_kind("gpipe"), ScheduleKind::GPipe);
  EXPECT_EQ(parse_schedule_kind("interleaved"), ScheduleKind::Interleaved);
  EXPECT_EQ(parse_schedule_kind("INTERLEAVED-1F1B"),
            ScheduleKind::Interleaved);
  EXPECT_EQ(parse_schedule_kind("sliced"), ScheduleKind::AutoPipeSliced);
  EXPECT_EQ(parse_schedule_kind("autopipe_sliced_1f1b"),
            ScheduleKind::AutoPipeSliced);
  EXPECT_EQ(parse_schedule_kind("zb"), ScheduleKind::ZeroBubble);
  EXPECT_EQ(parse_schedule_kind("zero-bubble"), ScheduleKind::ZeroBubble);
  EXPECT_EQ(parse_schedule_kind("ZeroBubble"), ScheduleKind::ZeroBubble);
}

TEST(Memory, ParseScheduleKindRejectsUnknownNames) {
  for (const char* bad : {"", "banana", "1f2b", "zero bubble"}) {
    EXPECT_THROW(parse_schedule_kind(bad), std::invalid_argument) << bad;
  }
  try {
    parse_schedule_kind("banana");
    FAIL() << "no exception";
  } catch (const std::invalid_argument& e) {
    // The message names the offender and lists valid spellings.
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1f1b"), std::string::npos);
  }
}

TEST(Memory, ZeroBubbleChargesDeferredWeightStates) {
  StageFootprint fp{1e9, 1e8, 1e8, 3e7};
  const double cap = 1e12;
  for (int stage = 0; stage < 4; ++stage) {
    const auto plain =
        stage_memory(fp, stage, 4, ScheduleKind::OneFOneB, 8, 1, cap);
    const auto zb =
        stage_memory(fp, stage, 4, ScheduleKind::ZeroBubble, 8, 1, cap);
    // Same warmup depth as 1F1B...
    EXPECT_EQ(zb.in_flight_micro_batches, plain.in_flight_micro_batches);
    // ...plus one B-state per deferred W, capped at the warmup depth.
    EXPECT_EQ(zb.deferred_grad_bytes, fp.bw_state_bytes * (4 - stage));
    EXPECT_EQ(zb.total_bytes, plain.total_bytes + zb.deferred_grad_bytes);
  }
  // The deferral cap also respects the micro-batch count.
  const auto few =
      stage_memory(fp, 0, 8, ScheduleKind::ZeroBubble, 3, 1, cap);
  EXPECT_EQ(few.deferred_grad_bytes, fp.bw_state_bytes * 3);
}

}  // namespace
}  // namespace autopipe::costmodel
