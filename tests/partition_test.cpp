#include <gtest/gtest.h>

#include "core/partition.h"
#include "costmodel/model_zoo.h"

namespace autopipe::core {
namespace {

class PartitionTest : public testing::Test {
 protected:
  ModelConfig cfg_ =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
};

TEST_F(PartitionTest, StageRanges) {
  Partition p{{3, 5, 42}};
  EXPECT_EQ(p.num_stages(), 3);
  EXPECT_EQ(p.stage_begin(0), 0);
  EXPECT_EQ(p.stage_begin(1), 3);
  EXPECT_EQ(p.stage_begin(2), 8);
  EXPECT_EQ(p.stage_end(2), 50);
  EXPECT_EQ(p.total_blocks(), 50);
}

TEST_F(PartitionTest, ValidateRejectsBadShapes) {
  EXPECT_THROW(validate(cfg_, Partition{{}}), std::invalid_argument);
  EXPECT_THROW(validate(cfg_, Partition{{50, 0}}), std::invalid_argument);
  EXPECT_THROW(validate(cfg_, Partition{{10, 10}}), std::invalid_argument);
  EXPECT_NO_THROW(validate(cfg_, Partition{{25, 25}}));
}

TEST_F(PartitionTest, StageCostsSumToModelTotals) {
  Partition p{{11, 13, 12, 14}};
  const auto costs = stage_costs(cfg_, p);
  double f = 0, b = 0;
  for (const auto& c : costs) {
    f += c.fwd_ms;
    b += c.bwd_ms;
  }
  EXPECT_NEAR(f, cfg_.total_fwd_ms(), 1e-9);
  EXPECT_NEAR(b, cfg_.total_bwd_ms(), 1e-9);
}

TEST_F(PartitionTest, BalanceStddevZeroForPerfectBalance) {
  // Two stages with identical synthetic loads.
  ModelConfig uniform = cfg_;
  for (auto& blk : uniform.blocks) {
    blk.fwd_ms = 1.0;
    blk.bwd_ms = 2.0;
  }
  EXPECT_DOUBLE_EQ(balance_stddev(uniform, Partition{{25, 25}}), 0.0);
  EXPECT_GT(balance_stddev(uniform, Partition{{10, 40}}), 0.0);
}

TEST_F(PartitionTest, LayerUnitsCountTransformerLayersOnly) {
  Partition p{{11, 13, 12, 14}};  // stage 0 has emb + 5 layers
  const auto units = stage_layer_units(cfg_, p);
  EXPECT_DOUBLE_EQ(units[0], 5.0);
  EXPECT_DOUBLE_EQ(units[0] + units[1] + units[2] + units[3], 24.0);
}

// Table II round trip: every scheme in the paper's table maps to a valid
// block partition whose layer units match.
class TableTwoTest : public testing::TestWithParam<std::vector<double>> {};

TEST_P(TableTwoTest, RoundTripsThroughBlocks) {
  const ModelConfig cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const auto& layers = GetParam();
  const Partition p = partition_from_layers(cfg, layers);
  const auto units = stage_layer_units(cfg, p);
  ASSERT_EQ(units.size(), layers.size());
  for (std::size_t s = 0; s < layers.size(); ++s) {
    EXPECT_NEAR(units[s], layers[s], 1e-9) << "stage " << s;
  }
  // Embedding on stage 0, head on the last stage.
  EXPECT_EQ(cfg.blocks[p.stage_begin(0)].kind, costmodel::BlockKind::Embedding);
  EXPECT_EQ(cfg.blocks[p.stage_end(3) - 1].kind, costmodel::BlockKind::Head);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSchemes, TableTwoTest,
    testing::Values(std::vector<double>{5, 7, 6, 6},
                    std::vector<double>{6, 6.5, 6.5, 5},
                    std::vector<double>{6, 7, 6, 5},
                    std::vector<double>{6.5, 6.5, 6.5, 4.5},
                    std::vector<double>{6.5, 6.5, 6, 5},
                    std::vector<double>{7, 5.5, 6, 5.5},
                    std::vector<double>{7, 6.5, 5.5, 5}));

TEST_F(PartitionTest, PartitionFromLayersRejectsBadSums) {
  EXPECT_THROW(partition_from_layers(cfg_, std::vector<double>{6, 6, 6, 5}),
               std::invalid_argument);
  EXPECT_THROW(partition_from_layers(cfg_, std::vector<double>{6, 6, 6, 7}),
               std::invalid_argument);
}

TEST_F(PartitionTest, MemoryHelpersCoverBlocks) {
  Partition p{{11, 13, 12, 14}};
  double params = 0;
  for (int s = 0; s < 4; ++s) params += stage_param_bytes(cfg_, p, s);
  EXPECT_NEAR(params, cfg_.total_param_bytes(), 1e-3);
  // Stage working set is a max, not a sum.
  EXPECT_LE(stage_work_bytes(cfg_, p, 0),
            stage_work_bytes(cfg_, p, 3));  // head dominates
}

TEST_F(PartitionTest, DescribeMentionsStagesAndLoads) {
  const std::string d = describe(cfg_, Partition{{25, 25}});
  EXPECT_NE(d.find("stages=2"), std::string::npos);
  EXPECT_NE(d.find("load_ms"), std::string::npos);
}

}  // namespace
}  // namespace autopipe::core
