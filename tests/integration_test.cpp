// End-to-end integration: model configs -> Planner -> Slicer -> schedule ->
// event executor -> thread runtime, plus cross-validation between the
// paper-faithful analytic simulator and the independent event executor.
#include <gtest/gtest.h>

#include <numeric>

#include "core/autopipe.h"
#include "core/planner.h"
#include "model/data.h"
#include "planners/megatron.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "trace/timeline.h"

namespace autopipe {
namespace {

TEST(Integration, FullAutoPipeFlowOnGpt2) {
  // Fig. 2 end to end: configs -> Planner -> Slicer -> schedule; then time
  // the schedule on the event executor and compare with Megatron-LM's
  // uniform 1F1B.
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const auto result = core::auto_plan(cfg, {4, 32, 4, true});
  ASSERT_EQ(result.plan.num_stages(), 4);

  const auto megatron = planners::megatron_partition(cfg, 4);
  const auto mega_costs = core::stage_costs(cfg, megatron);
  const auto mega_exec =
      sim::execute(core::build_1f1b(mega_costs, 8, cfg.comm_ms));
  const auto ours_exec = sim::execute(result.schedule);

  // Paper headline: 1.02x-1.30x over Megatron-LM.
  const double speedup = mega_exec.iteration_ms / ours_exec.iteration_ms;
  EXPECT_GT(speedup, 1.02);
  EXPECT_LT(speedup, 1.6);
  // Startup roughly halved vs the un-sliced plan on the same partition.
  const auto plan_costs = core::stage_costs(cfg, result.plan.partition);
  const auto unsliced_exec =
      sim::execute(core::build_1f1b(plan_costs, 8, cfg.comm_ms));
  EXPECT_NEAR(ours_exec.startup_ms, unsliced_exec.startup_ms / 2,
              unsliced_exec.startup_ms * 0.1);
}

TEST(Integration, SimulatorTracksExecutorAcrossTableTwoSchemes) {
  // Fig. 11's property: across the seven Table-II schemes the analytic
  // simulator and the "actual" executor (with launch overhead) move
  // together -- same ordering trend, stable gap.
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const std::vector<std::vector<double>> schemes{
      {5, 7, 6, 6},       {6, 6.5, 6.5, 5}, {6, 7, 6, 5},
      {6.5, 6.5, 6.5, 4.5}, {6.5, 6.5, 6, 5}, {7, 5.5, 6, 5.5},
      {7, 6.5, 5.5, 5}};
  sim::ExecOptions actual;
  actual.per_op_overhead_ms = cfg.device.kernel_launch_ms;

  std::vector<double> sim_ms, act_ms;
  for (const auto& layers : schemes) {
    const auto p = core::partition_from_layers(cfg, layers);
    sim_ms.push_back(core::simulate_pipeline(cfg, p, 8).iteration_ms);
    const auto costs = core::stage_costs(cfg, p);
    act_ms.push_back(
        sim::execute(core::build_1f1b(costs, 8, cfg.comm_ms), actual)
            .iteration_ms);
  }
  // The paper claims the gap is *stable* and the trend matches -- it does
  // not fix the sign. Here the analytic simulator over-charges
  // communication (Comm is added outside the max), so it sits consistently
  // above the executor; the executor's launch overhead pulls the other
  // way. Check: one consistent sign, small magnitude, low spread.
  std::vector<double> gaps;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    gaps.push_back(act_ms[i] - sim_ms[i]);
    EXPECT_LT(std::abs(gaps.back()), sim_ms[i] * 0.1) << i;
    EXPECT_EQ(gaps.back() > 0, gaps.front() > 0) << "sign flip at " << i;
  }
  const double mean_gap =
      std::accumulate(gaps.begin(), gaps.end(), 0.0) / gaps.size();
  for (double g : gaps) {
    EXPECT_LT(std::abs(g - mean_gap), std::abs(mean_gap) * 0.5 + 0.5);
  }
  // Rank correlation: the best scheme under the simulator is within the
  // top two under the executor.
  const auto best_sim =
      std::min_element(sim_ms.begin(), sim_ms.end()) - sim_ms.begin();
  std::vector<double> sorted = act_ms;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_LE(act_ms[best_sim], sorted[1] + 1e-9);
}

TEST(Integration, PlannedScheduleTrainsARealModel) {
  // Take AutoPipe's planned partition shape (4 stages), map it onto a tiny
  // real transformer, execute the sliced schedule with threads, and verify
  // both gradient equivalence and that a few optimizer steps reduce loss.
  model::TinySpec spec;
  spec.layers = 4;  // 10 blocks
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  model::TransformerModel reference(spec), pipelined(spec);

  const int m = 8, B = 2;
  // Block partition: embedding+layer1 | layer2 | layer3 | layer4+head.
  const std::vector<int> counts{3, 2, 2, 3};
  runtime::PipelineRuntime rt(pipelined, counts);
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::AutoPipeSliced, m, 2);

  model::SyntheticCorpus corpus(spec.vocab);
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);

  reference.zero_grads();
  const double ref_loss =
      reference.reference_step(batch.ids, batch.targets, scale);
  pipelined.zero_grads();
  const auto result = rt.run_iteration(schedule, micro, scale);
  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(reference.max_grad_diff(pipelined), 1e-4);

  runtime::Adam adam(3e-3);
  double first = 0, last = 0;
  for (int it = 0; it < 10; ++it) {
    const auto b = corpus.next_batch(B * m, spec.seq);
    const auto mbs =
        model::SyntheticCorpus::split_micro_batches(b, spec.seq, B);
    pipelined.zero_grads();
    const auto r = rt.run_iteration(schedule, mbs, scale);
    adam.step(pipelined);
    if (it == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);
}

TEST(Integration, StagesPlusDataParallelEqualsGpus) {
  // §IV-D: AutoPipe's data-parallel size is GPUs / pipeline stages for
  // every GPU count it plans for.
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  for (int gpus : {1, 2, 4, 8, 16}) {
    const auto r = core::auto_plan(cfg, {gpus, 256, 0, true});
    EXPECT_EQ(r.plan.num_stages() * r.plan.data_parallel, gpus);
    EXPECT_FALSE(r.evaluation.oom);
  }
}

TEST(Integration, TimelineShowsSlicedWarmup) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const auto result = core::auto_plan(cfg, {4, 32, 4, true});
  const auto exec = sim::execute(result.schedule);
  const std::string art = trace::render_timeline(exec, {100, false});
  EXPECT_NE(art.find('^'), std::string::npos);  // sliced half markers
  const auto metrics = sim::analyze(exec);
  EXPECT_LT(metrics.bubble_fraction, 0.5);
}

TEST(Integration, SlicerHelpsDeepPipelinesNotShallow) {
  // Fig. 10's Slicer observation: at depth 2 slicing does not help (it can
  // slightly hurt); at depth 8 it reduces iteration time.
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  for (int depth : {2, 8}) {
    const auto planned = core::plan(cfg, depth, 2 * depth);
    const auto costs = core::stage_costs(cfg, planned.partition);
    const auto slicing = core::solve_slicing(costs, cfg.comm_ms, 2 * depth);
    const auto plain =
        sim::execute(core::build_1f1b(costs, 2 * depth, cfg.comm_ms));
    const auto sliced = sim::execute(core::build_sliced_1f1b(
        costs, 2 * depth, cfg.comm_ms, slicing.sliced_micro_batches));
    const double gain = plain.iteration_ms - sliced.iteration_ms;
    if (depth == 8) {
      EXPECT_GT(gain, 0.0);
    } else {
      EXPECT_GT(gain, -plain.iteration_ms * 0.05);  // never a big loss
    }
  }
}

}  // namespace
}  // namespace autopipe
