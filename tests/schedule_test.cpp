#include <gtest/gtest.h>

#include "core/schedule.h"
#include "planners/megatron.h"

namespace autopipe::core {
namespace {

std::vector<StageCost> uniform_stages(int n, double f = 1.0, double b = 2.0) {
  return std::vector<StageCost>(n, StageCost{f, b});
}

// Every builder must satisfy the structural invariants for a sweep of
// shapes -- validate() throws on violation.
struct ShapeCase {
  int stages, micro_batches, sliced;
};

class OneFOneBShapes : public testing::TestWithParam<ShapeCase> {};

TEST_P(OneFOneBShapes, BuildsValidSchedules) {
  const auto [n, m, sliced] = GetParam();
  const auto plain = build_1f1b(uniform_stages(n), m, 0.1);
  EXPECT_NO_THROW(validate(plain));
  EXPECT_EQ(plain.kind, ScheduleKind::OneFOneB);
  const auto gp = build_gpipe(uniform_stages(n), m, 0.1);
  EXPECT_NO_THROW(validate(gp));
  const auto sl = build_sliced_1f1b(uniform_stages(n), m, 0.1, sliced);
  EXPECT_NO_THROW(validate(sl));
  if (sliced > 0) EXPECT_EQ(sl.kind, ScheduleKind::AutoPipeSliced);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OneFOneBShapes,
    testing::Values(ShapeCase{1, 4, 0}, ShapeCase{2, 4, 1},
                    ShapeCase{4, 8, 0}, ShapeCase{4, 8, 1},
                    ShapeCase{4, 8, 3}, ShapeCase{8, 16, 2},
                    ShapeCase{3, 3, 1}, ShapeCase{12, 24, 4},
                    ShapeCase{5, 20, 4}));

TEST(Schedule, OneFOneBWarmupDepth) {
  const auto s = build_1f1b(uniform_stages(4), 8, 0.1);
  // Stage 0 runs 3 warmup forwards before its first backward.
  int leading_forwards = 0;
  for (const auto& op : s.order[0]) {
    if (op.type == OpType::Forward) {
      ++leading_forwards;
    } else {
      break;
    }
  }
  EXPECT_EQ(leading_forwards, 4);  // 3 warmup + the first 1F1B block forward
  // The last stage alternates from the start.
  EXPECT_EQ(s.order[3][0].type, OpType::Forward);
  EXPECT_EQ(s.order[3][1].type, OpType::Backward);
}

TEST(Schedule, GPipeRunsAllForwardsFirst) {
  const auto s = build_gpipe(uniform_stages(3), 5, 0.1);
  for (int dev = 0; dev < 3; ++dev) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(s.order[dev][i].type, OpType::Forward);
      EXPECT_EQ(s.order[dev][i + 5].type, OpType::Backward);
    }
    // Backwards run in reverse micro-batch order.
    EXPECT_EQ(s.order[dev][5].micro_batch, 4);
    EXPECT_EQ(s.order[dev][9].micro_batch, 0);
  }
}

TEST(Schedule, SlicedOpsAreHalvedAndPaired) {
  const auto s = build_sliced_1f1b(uniform_stages(4), 8, 0.1, 2);
  for (int dev = 0; dev < 4; ++dev) {
    int halves = 0;
    for (std::size_t i = 0; i < s.order[dev].size(); ++i) {
      const auto& op = s.order[dev][i];
      if (op.micro_batch < 2) {
        EXPECT_TRUE(op.is_half());
        ++halves;
        if (op.half == 0) {
          // The sibling half follows immediately.
          ASSERT_LT(i + 1, s.order[dev].size());
          EXPECT_EQ(s.order[dev][i + 1].half, 1);
          EXPECT_EQ(s.order[dev][i + 1].micro_batch, op.micro_batch);
        }
      } else {
        EXPECT_FALSE(op.is_half());
      }
    }
    EXPECT_EQ(halves, 2 * 2 * 2);  // 2 micro-batches x F/B x 2 halves
  }
}

TEST(Schedule, HalfOpsHaveHalfDuration) {
  const auto s = build_sliced_1f1b(uniform_stages(2, 3.0, 5.0), 4, 0.1, 1);
  for (const auto& op : s.order[0]) {
    const double d = s.op_duration_ms(0, op);
    const double whole = op.type == OpType::Forward ? 3.0 : 5.0;
    EXPECT_DOUBLE_EQ(d, op.is_half() ? whole / 2 : whole);
  }
}

TEST(Schedule, AggregatedCommMarksLaterSlicedHalvesOnly) {
  const auto s = build_sliced_1f1b(uniform_stages(4), 8, 0.1, 3);
  for (int dev = 0; dev < 4; ++dev) {
    for (const auto& op : s.order[dev]) {
      if (!op.aggregated_comm) continue;
      EXPECT_EQ(op.type, OpType::Forward);
      EXPECT_EQ(op.half, 0);
      EXPECT_GE(op.micro_batch, 1);  // micro-batch 0 carries the startup win
      EXPECT_LT(op.micro_batch, 3);
      EXPECT_LT(dev, 3);  // the last stage sends nothing forward
    }
  }
}

TEST(Schedule, RejectsBadArguments) {
  EXPECT_THROW(build_1f1b(uniform_stages(4), 3, 0.1), std::invalid_argument);
  EXPECT_THROW(build_sliced_1f1b(uniform_stages(4), 8, 0.1, 9),
               std::invalid_argument);
  EXPECT_THROW(build_gpipe({}, 4, 0.1), std::invalid_argument);
}

TEST(Schedule, InterleavedRequiresDivisibility) {
  const std::vector<std::vector<StageCost>> chunks(
      4, std::vector<StageCost>(2, StageCost{1, 2}));
  EXPECT_THROW(build_interleaved(chunks, 6, 0.1), std::invalid_argument);
  EXPECT_NO_THROW(build_interleaved(chunks, 8, 0.1));
}

TEST(Schedule, InterleavedCoversEveryChunk) {
  const std::vector<std::vector<StageCost>> chunks(
      2, std::vector<StageCost>(3, StageCost{1, 2}));
  const auto s = build_interleaved(chunks, 4, 0.1);
  EXPECT_NO_THROW(validate(s));
  EXPECT_EQ(s.chunks, 3);
  // Each device executes m forwards and m backwards per chunk.
  for (int dev = 0; dev < 2; ++dev) {
    EXPECT_EQ(s.order[dev].size(), 2u * 4 * 3);
  }
}

TEST(Schedule, InterleavedWarmupIsDeeperThanPlain) {
  const std::vector<std::vector<StageCost>> chunks(
      4, std::vector<StageCost>(2, StageCost{1, 2}));
  const auto inter = build_interleaved(chunks, 8, 0.1);
  // Device 0 warmup: (4-0-1)*2 + (2-1)*4 = 10 leading forwards.
  int leading = 0;
  for (const auto& op : inter.order[0]) {
    if (op.type != OpType::Forward) break;
    ++leading;
  }
  EXPECT_EQ(leading, 11);  // 10 warmup + first steady forward
}

TEST(Schedule, MegatronInterleavedCostsSplitLayers) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  ASSERT_TRUE(planners::megatron_interleaved_supports(cfg, 4, 2));
  const auto costs = planners::megatron_interleaved_costs(cfg, 4, 2);
  ASSERT_EQ(costs.size(), 4u);
  ASSERT_EQ(costs[0].size(), 2u);
  // Total forward time across all chunks equals the model total.
  double total = 0;
  for (const auto& dev : costs) {
    for (const auto& c : dev) total += c.fwd_ms;
  }
  EXPECT_NEAR(total, cfg.total_fwd_ms(), 1e-9);
  // 24 layers over 8 global stages -> 3 layers per chunk; the last global
  // stage also holds the expensive head.
  EXPECT_GT(costs[3][1].fwd_ms, costs[1][0].fwd_ms * 1.3);
  EXPECT_FALSE(planners::megatron_interleaved_supports(cfg, 4, 5));
}

TEST(Schedule, ValidateCatchesCorruption) {
  auto s = build_1f1b(uniform_stages(2), 4, 0.1);
  auto broken = s;
  broken.order[0].pop_back();  // drop an op
  EXPECT_THROW(validate(broken), std::logic_error);
  broken = s;
  broken.order[1][0].micro_batch = 99;
  EXPECT_THROW(validate(broken), std::logic_error);
}

}  // namespace
}  // namespace autopipe::core
