#include <gtest/gtest.h>

#include "core/schedule.h"
#include "planners/megatron.h"
#include "sim/executor.h"

namespace autopipe::core {
namespace {

std::vector<StageCost> uniform_stages(int n, double f = 1.0, double b = 2.0) {
  return std::vector<StageCost>(n, StageCost{f, b});
}

// Every builder must satisfy the structural invariants for a sweep of
// shapes -- validate() throws on violation.
struct ShapeCase {
  int stages, micro_batches, sliced;
};

class OneFOneBShapes : public testing::TestWithParam<ShapeCase> {};

TEST_P(OneFOneBShapes, BuildsValidSchedules) {
  const auto [n, m, sliced] = GetParam();
  const auto plain = build_1f1b(uniform_stages(n), m, 0.1);
  EXPECT_NO_THROW(validate(plain));
  EXPECT_EQ(plain.kind, ScheduleKind::OneFOneB);
  const auto gp = build_gpipe(uniform_stages(n), m, 0.1);
  EXPECT_NO_THROW(validate(gp));
  const auto sl = build_sliced_1f1b(uniform_stages(n), m, 0.1, sliced);
  EXPECT_NO_THROW(validate(sl));
  if (sliced > 0) {
    EXPECT_EQ(sl.kind, ScheduleKind::AutoPipeSliced);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OneFOneBShapes,
    testing::Values(ShapeCase{1, 4, 0}, ShapeCase{2, 4, 1},
                    ShapeCase{4, 8, 0}, ShapeCase{4, 8, 1},
                    ShapeCase{4, 8, 3}, ShapeCase{8, 16, 2},
                    ShapeCase{3, 3, 1}, ShapeCase{12, 24, 4},
                    ShapeCase{5, 20, 4}));

TEST(Schedule, OneFOneBWarmupDepth) {
  const auto s = build_1f1b(uniform_stages(4), 8, 0.1);
  // Stage 0 runs 3 warmup forwards before its first backward.
  int leading_forwards = 0;
  for (const auto& op : s.order[0]) {
    if (op.type == OpType::Forward) {
      ++leading_forwards;
    } else {
      break;
    }
  }
  EXPECT_EQ(leading_forwards, 4);  // 3 warmup + the first 1F1B block forward
  // The last stage alternates from the start.
  EXPECT_EQ(s.order[3][0].type, OpType::Forward);
  EXPECT_EQ(s.order[3][1].type, OpType::Backward);
}

TEST(Schedule, GPipeRunsAllForwardsFirst) {
  const auto s = build_gpipe(uniform_stages(3), 5, 0.1);
  for (int dev = 0; dev < 3; ++dev) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(s.order[dev][i].type, OpType::Forward);
      EXPECT_EQ(s.order[dev][i + 5].type, OpType::Backward);
    }
    // Backwards run in reverse micro-batch order.
    EXPECT_EQ(s.order[dev][5].micro_batch, 4);
    EXPECT_EQ(s.order[dev][9].micro_batch, 0);
  }
}

TEST(Schedule, SlicedOpsAreHalvedAndPaired) {
  const auto s = build_sliced_1f1b(uniform_stages(4), 8, 0.1, 2);
  for (int dev = 0; dev < 4; ++dev) {
    int halves = 0;
    for (std::size_t i = 0; i < s.order[dev].size(); ++i) {
      const auto& op = s.order[dev][i];
      if (op.micro_batch < 2) {
        EXPECT_TRUE(op.is_half());
        ++halves;
        if (op.half == 0) {
          // The sibling half follows immediately.
          ASSERT_LT(i + 1, s.order[dev].size());
          EXPECT_EQ(s.order[dev][i + 1].half, 1);
          EXPECT_EQ(s.order[dev][i + 1].micro_batch, op.micro_batch);
        }
      } else {
        EXPECT_FALSE(op.is_half());
      }
    }
    EXPECT_EQ(halves, 2 * 2 * 2);  // 2 micro-batches x F/B x 2 halves
  }
}

TEST(Schedule, HalfOpsHaveHalfDuration) {
  const auto s = build_sliced_1f1b(uniform_stages(2, 3.0, 5.0), 4, 0.1, 1);
  for (const auto& op : s.order[0]) {
    const double d = s.op_duration_ms(0, op);
    const double whole = op.type == OpType::Forward ? 3.0 : 5.0;
    EXPECT_DOUBLE_EQ(d, op.is_half() ? whole / 2 : whole);
  }
}

TEST(Schedule, AggregatedCommMarksLaterSlicedHalvesOnly) {
  const auto s = build_sliced_1f1b(uniform_stages(4), 8, 0.1, 3);
  for (int dev = 0; dev < 4; ++dev) {
    for (const auto& op : s.order[dev]) {
      if (!op.aggregated_comm) continue;
      EXPECT_EQ(op.type, OpType::Forward);
      EXPECT_EQ(op.half, 0);
      EXPECT_GE(op.micro_batch, 1);  // micro-batch 0 carries the startup win
      EXPECT_LT(op.micro_batch, 3);
      EXPECT_LT(dev, 3);  // the last stage sends nothing forward
    }
  }
}

TEST(Schedule, RejectsBadArguments) {
  EXPECT_THROW(build_1f1b(uniform_stages(4), 3, 0.1), std::invalid_argument);
  EXPECT_THROW(build_sliced_1f1b(uniform_stages(4), 8, 0.1, 9),
               std::invalid_argument);
  EXPECT_THROW(build_gpipe({}, 4, 0.1), std::invalid_argument);
}

TEST(Schedule, InterleavedRequiresDivisibility) {
  const std::vector<std::vector<StageCost>> chunks(
      4, std::vector<StageCost>(2, StageCost{1, 2}));
  EXPECT_THROW(build_interleaved(chunks, 6, 0.1), std::invalid_argument);
  EXPECT_NO_THROW(build_interleaved(chunks, 8, 0.1));
}

TEST(Schedule, InterleavedCoversEveryChunk) {
  const std::vector<std::vector<StageCost>> chunks(
      2, std::vector<StageCost>(3, StageCost{1, 2}));
  const auto s = build_interleaved(chunks, 4, 0.1);
  EXPECT_NO_THROW(validate(s));
  EXPECT_EQ(s.chunks, 3);
  // Each device executes m forwards and m backwards per chunk.
  for (int dev = 0; dev < 2; ++dev) {
    EXPECT_EQ(s.order[dev].size(), 2u * 4 * 3);
  }
}

TEST(Schedule, InterleavedWarmupIsDeeperThanPlain) {
  const std::vector<std::vector<StageCost>> chunks(
      4, std::vector<StageCost>(2, StageCost{1, 2}));
  const auto inter = build_interleaved(chunks, 8, 0.1);
  // Device 0 warmup: (4-0-1)*2 + (2-1)*4 = 10 leading forwards.
  int leading = 0;
  for (const auto& op : inter.order[0]) {
    if (op.type != OpType::Forward) break;
    ++leading;
  }
  EXPECT_EQ(leading, 11);  // 10 warmup + first steady forward
}

TEST(Schedule, MegatronInterleavedCostsSplitLayers) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  ASSERT_TRUE(planners::megatron_interleaved_supports(cfg, 4, 2));
  const auto costs = planners::megatron_interleaved_costs(cfg, 4, 2);
  ASSERT_EQ(costs.size(), 4u);
  ASSERT_EQ(costs[0].size(), 2u);
  // Total forward time across all chunks equals the model total.
  double total = 0;
  for (const auto& dev : costs) {
    for (const auto& c : dev) total += c.fwd_ms;
  }
  EXPECT_NEAR(total, cfg.total_fwd_ms(), 1e-9);
  // 24 layers over 8 global stages -> 3 layers per chunk; the last global
  // stage also holds the expensive head.
  EXPECT_GT(costs[3][1].fwd_ms, costs[1][0].fwd_ms * 1.3);
  EXPECT_FALSE(planners::megatron_interleaved_supports(cfg, 4, 5));
}

TEST(Schedule, ValidateCatchesCorruption) {
  auto s = build_1f1b(uniform_stages(2), 4, 0.1);
  auto broken = s;
  broken.order[0].pop_back();  // drop an op
  EXPECT_THROW(validate(broken), std::logic_error);
  broken = s;
  broken.order[1][0].micro_batch = 99;
  EXPECT_THROW(validate(broken), std::logic_error);
}

TEST(Schedule, CarriesPerBoundaryCommCosts) {
  const auto uniform = build_1f1b(uniform_stages(4), 8, 0.25);
  EXPECT_EQ(uniform.boundary_comm_ms, (std::vector<double>{0.25, 0.25, 0.25}));
  EXPECT_DOUBLE_EQ(uniform.hop_ms(1), 0.25);

  const auto hetero = build_1f1b(
      uniform_stages(4), 8, CommModel::from_costs({0.1, 0.9, 0.2}));
  EXPECT_EQ(hetero.boundary_comm_ms, (std::vector<double>{0.1, 0.9, 0.2}));

  // Interleaved: chunks*stages-1 global boundaries, including the wrap hop.
  const std::vector<std::vector<StageCost>> chunks(
      2, std::vector<StageCost>(2, StageCost{1, 2}));
  const auto inter = build_interleaved(chunks, 4, 0.5);
  EXPECT_EQ(inter.boundary_comm_ms.size(), 3u);

  // An explicit vector of the wrong size is rejected at build time.
  EXPECT_THROW(
      build_1f1b(uniform_stages(4), 8, CommModel::from_costs({0.1, 0.9})),
      std::invalid_argument);
}

TEST(Schedule, UniformCommModelIsBitIdenticalToScalar) {
  // Contract (a) of the refactor: a uniform CommModel must reproduce the
  // historical scalar-comm executor results bit-for-bit, and so must an
  // explicit per-boundary vector whose entries all equal the scalar (every
  // consumer adds hops one at a time, never as a closed-form multiply).
  const auto costs = uniform_stages(5, 1.7, 3.9);
  const double c = 0.37;
  const auto scalar = sim::execute(build_sliced_1f1b(costs, 11, c, 3));
  const auto vector = sim::execute(build_sliced_1f1b(
      costs, 11, CommModel::from_costs({c, c, c, c}), 3));
  EXPECT_EQ(scalar.iteration_ms, vector.iteration_ms);
  EXPECT_EQ(scalar.startup_ms, vector.startup_ms);
  ASSERT_EQ(scalar.trace.size(), vector.trace.size());
  for (std::size_t i = 0; i < scalar.trace.size(); ++i) {
    EXPECT_EQ(scalar.trace[i].start_ms, vector.trace[i].start_ms);
    EXPECT_EQ(scalar.trace[i].end_ms, vector.trace[i].end_ms);
  }
}

TEST(ScheduleEval, MatchesExecutorOnKnownShapes) {
  const auto costs = uniform_stages(4, 2.0, 4.0);
  for (const auto& schedule :
       {build_1f1b(costs, 8, 0.3), build_gpipe(costs, 8, 0.3),
        build_sliced_1f1b(costs, 8, 0.3, 2)}) {
    const auto eval = evaluate_schedule(schedule);
    const auto exec = sim::execute(schedule);
    EXPECT_EQ(eval.iteration_ms, exec.iteration_ms);
    EXPECT_EQ(eval.startup_ms, exec.startup_ms);
  }
}

TEST(ScheduleEval, HeterogeneousBoundaryShiftsStartup) {
  // Pricing one boundary 5 ms slower delays the last device's first forward
  // by exactly that lag on an otherwise free interconnect.
  const auto costs = uniform_stages(4, 2.0, 4.0);
  const auto base = evaluate_schedule(build_1f1b(costs, 8, 0.0));
  const auto skewed = evaluate_schedule(
      build_1f1b(costs, 8, CommModel::from_costs({0.0, 5.0, 0.0})));
  EXPECT_NEAR(skewed.startup_ms, base.startup_ms + 5.0, 1e-12);
}

TEST(ScheduleEval, CriticalPathRidesTheBottleneckDevice) {
  // One device twice as slow as the rest: the steady-phase critical path
  // must ride it.
  std::vector<StageCost> costs = uniform_stages(4, 2.0, 4.0);
  costs[2] = StageCost{4.0, 8.0};
  const auto eval = evaluate_schedule(build_1f1b(costs, 8, 0.1));
  ASSERT_FALSE(eval.critical_path.empty());
  int bottleneck_hits = 0;
  for (int id : eval.critical_path) {
    EXPECT_TRUE(eval.ops[id].on_critical_path);
    if (eval.ops[id].device == 2) ++bottleneck_hits;
  }
  EXPECT_GT(bottleneck_hits,
            static_cast<int>(eval.critical_path.size()) / 2);
  // The path is causally ordered.
  for (std::size_t i = 1; i < eval.critical_path.size(); ++i) {
    EXPECT_LE(eval.ops[eval.critical_path[i - 1]].end_ms,
              eval.ops[eval.critical_path[i]].start_ms + 1e-12);
  }
}

TEST(ScheduleEval, RejectsMalformedSchedules) {
  auto schedule = build_1f1b(uniform_stages(3), 6, 0.1);
  schedule.boundary_comm_ms = {0.1};  // wrong size
  EXPECT_THROW(evaluate_schedule(schedule), std::logic_error);
}

}  // namespace
}  // namespace autopipe::core
