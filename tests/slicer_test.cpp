#include <gtest/gtest.h>

#include "core/planner.h"
#include "core/slicer.h"

namespace autopipe::core {
namespace {

std::vector<StageCost> uniform_stages(int n, double f, double b) {
  return std::vector<StageCost>(n, StageCost{f, b});
}

TEST(Slicer, SingleStageHasNothingToSlice) {
  const auto r = solve_slicing(uniform_stages(1, 2, 4), 0.5, 8);
  EXPECT_EQ(r.sliced_micro_batches, 0);
  EXPECT_DOUBLE_EQ(r.startup_before_ms, 0.0);
}

TEST(Slicer, HalvesStartupEstimate) {
  // The headline claim: slicing halves the startup overhead (§III-C).
  for (int n : {2, 4, 8, 12}) {
    const auto r = solve_slicing(uniform_stages(n, 3, 7), 0.4, 2 * n);
    EXPECT_NEAR(r.startup_after_ms, r.startup_before_ms / 2, 1e-9) << n;
    EXPECT_GE(r.sliced_micro_batches, 1);
  }
}

TEST(Slicer, SliceCountBounded) {
  for (int n : {2, 3, 4, 8, 16}) {
    const auto r = solve_slicing(uniform_stages(n, 2, 6), 0.3, 2 * n);
    EXPECT_GE(r.sliced_micro_batches, 1) << n;
    EXPECT_LT(r.sliced_micro_batches, n) << n;  // warmup depth bound
  }
}

TEST(Slicer, NeverSlicesMoreThanMicroBatches) {
  const auto r = solve_slicing(uniform_stages(8, 2, 6), 0.3, 2);
  EXPECT_LE(r.sliced_micro_batches, 2);
}

TEST(Slicer, ShallowPipelineSlicesJustOne) {
  // A 2-stage pipeline has a single warmup micro-batch; Algorithm 2 must
  // not slice beyond it.
  const auto r = solve_slicing(uniform_stages(2, 2, 6), 0.3, 8);
  EXPECT_EQ(r.sliced_micro_batches, 1);
}

TEST(Slicer, DeeperPipelinesNeedMoreSlices) {
  // The number of split micro-batches grows (weakly) with pipeline depth:
  // deeper pipelines have longer warmups to cover.
  int last = 1;
  for (int n : {4, 8, 16}) {
    const auto r = solve_slicing(uniform_stages(n, 2.0, 2.2), 0.01, 2 * n);
    EXPECT_GE(r.sliced_micro_batches, last) << "depth " << n;
    last = r.sliced_micro_batches;
  }
}

TEST(Slicer, HeavyBackwardNeedsFewerSlices) {
  // With b >> f the 1F1B phase is backward-dominated and the unbroken
  // micro-batch start is late: fewer slices suffice.
  const auto heavy = solve_slicing(uniform_stages(8, 1.0, 9.0), 0.1, 16);
  const auto light = solve_slicing(uniform_stages(8, 1.0, 1.0), 0.1, 16);
  EXPECT_LE(heavy.sliced_micro_batches, light.sliced_micro_batches);
}

TEST(Slicer, DeterministicAndPartitionOverloadAgrees) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const PlannerResult planned = plan(cfg, 4, 8);
  const auto a = solve_slicing(cfg, planned.partition, 8);
  const auto costs = stage_costs(cfg, planned.partition);
  const auto b = solve_slicing(costs, cfg.comm_ms, 8);
  EXPECT_EQ(a.sliced_micro_batches, b.sliced_micro_batches);
  EXPECT_DOUBLE_EQ(a.startup_before_ms, b.startup_before_ms);
}

TEST(Slicer, StartupBeforeMatchesSimulator) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const Partition p{{11, 13, 12, 14}};
  const auto costs = stage_costs(cfg, p);
  const auto sliced = solve_slicing(costs, cfg.comm_ms, 8);
  const auto sim = simulate_pipeline(costs, 8, cfg.comm_ms);
  EXPECT_NEAR(sliced.startup_before_ms, sim.startup_ms, 1e-6);
}

TEST(Slicer, PerBoundaryCostsMatchSimulatorStartup) {
  // Algorithm 2's startup estimate must agree with the simulator under
  // heterogeneous boundary pricing too, not only the scalar model.
  const auto costs = uniform_stages(4, 3, 7);
  const auto comm = costmodel::CommModel::from_costs({0.1, 2.5, 0.1});
  const auto sliced = solve_slicing(costs, comm, 8);
  const auto sim = simulate_pipeline(costs, 8, comm);
  EXPECT_NEAR(sliced.startup_before_ms, sim.startup_ms, 1e-9);
  // The slow boundary raises the unsliced startup versus uniform pricing.
  const auto uniform = solve_slicing(costs, 0.1, 8);
  EXPECT_GT(sliced.startup_before_ms, uniform.startup_before_ms);
}

TEST(Slicer, UniformVectorIsBitIdenticalToScalar) {
  const auto costs = uniform_stages(6, 2.3, 5.1);
  const double c = 0.45;
  const auto scalar = solve_slicing(costs, c, 12);
  const auto vector = solve_slicing(
      costs, costmodel::CommModel::from_costs({c, c, c, c, c}), 12);
  EXPECT_EQ(scalar.sliced_micro_batches, vector.sliced_micro_batches);
  EXPECT_EQ(scalar.startup_before_ms, vector.startup_before_ms);
  EXPECT_EQ(scalar.startup_after_ms, vector.startup_after_ms);
}

}  // namespace
}  // namespace autopipe::core
