#include <gtest/gtest.h>

#include "core/schedule.h"
#include "costmodel/topology.h"
#include "sim/executor.h"
#include "sim/metrics.h"

namespace autopipe {
namespace {

using costmodel::ClusterTopology;
using costmodel::CommModel;

TEST(Topology, NodeMapping) {
  const ClusterTopology t = costmodel::paper_cluster();
  EXPECT_EQ(t.gpus_per_node, 4);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.node_of(15), 3);
}

TEST(Topology, BoundaryLinksFollowNodeEdges) {
  const ClusterTopology t = costmodel::paper_cluster();
  const double bytes = 8e6;  // one activation tensor
  const auto comms = CommModel::from_topology(t, 0, bytes).boundary_costs(8);
  ASSERT_EQ(comms.size(), 7u);
  const double intra = costmodel::transfer_ms(t.intra_node, bytes);
  const double inter = costmodel::transfer_ms(t.inter_node, bytes);
  // Boundaries 0,1,2 inside node 0; boundary 3 crosses to node 1; etc.
  EXPECT_DOUBLE_EQ(comms[0], intra);
  EXPECT_DOUBLE_EQ(comms[2], intra);
  EXPECT_DOUBLE_EQ(comms[3], inter);
  EXPECT_DOUBLE_EQ(comms[4], intra);
  // Offset placement shifts the node edge.
  const auto shifted = CommModel::from_topology(t, 2, bytes).boundary_costs(4);
  EXPECT_DOUBLE_EQ(shifted[0], intra);  // devices 2-3
  EXPECT_DOUBLE_EQ(shifted[1], inter);  // devices 3-4 cross nodes
  EXPECT_DOUBLE_EQ(shifted[2], intra);  // devices 4-5
  // hop_ms prices the same boundaries on demand.
  const CommModel model = CommModel::from_topology(t, 0, bytes);
  EXPECT_DOUBLE_EQ(model.hop_ms(2), intra);
  EXPECT_DOUBLE_EQ(model.hop_ms(3), inter);
}

TEST(Topology, InterleavedWrapAroundBoundary) {
  // chunks=2 on 4 devices: global boundary 3 wraps from device 3 back to
  // device 0 -- an inter-node hop on the paper cluster.
  const ClusterTopology t = costmodel::paper_cluster();
  ClusterTopology two_wide = t;
  two_wide.gpus_per_node = 2;
  const double bytes = 8e6;
  const auto comms =
      CommModel::from_topology(two_wide, 0, bytes).boundary_costs(4, 2);
  ASSERT_EQ(comms.size(), 7u);
  const double intra = costmodel::transfer_ms(two_wide.intra_node, bytes);
  const double inter = costmodel::transfer_ms(two_wide.inter_node, bytes);
  EXPECT_DOUBLE_EQ(comms[0], intra);  // devices 0-1, same node
  EXPECT_DOUBLE_EQ(comms[1], inter);  // devices 1-2, cross
  EXPECT_DOUBLE_EQ(comms[3], inter);  // wrap: devices 3-0, cross
  EXPECT_DOUBLE_EQ(comms[4], intra);  // second chunk, devices 0-1
}

TEST(Topology, RejectsBadQueries) {
  const ClusterTopology t = costmodel::paper_cluster();
  EXPECT_THROW(CommModel::uniform(-1.0), std::invalid_argument);
  EXPECT_THROW(CommModel::from_costs({0.1, -0.2}), std::invalid_argument);
  EXPECT_THROW(CommModel::from_topology(t, -1, 1.0), std::invalid_argument);
  EXPECT_THROW(CommModel::from_topology(t, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(CommModel::from_topology(t, 0, 1.0).boundary_costs(0),
               std::invalid_argument);
  // An explicit vector must match the boundary count exactly.
  EXPECT_THROW(CommModel::from_costs({0.1, 0.1}).boundary_costs(4),
               std::invalid_argument);
  EXPECT_THROW(CommModel::from_costs({0.1, 0.1}).hop_ms(2),
               std::invalid_argument);
  EXPECT_THROW(CommModel::uniform(1.0).hop_ms(-1), std::invalid_argument);
  EXPECT_NO_THROW(CommModel::uniform(1.0).uniform_ms());
  EXPECT_THROW(CommModel::from_costs({0.1}).uniform_ms(), std::logic_error);
}

TEST(Topology, ExecutorUsesHeterogeneousBoundaries) {
  // An 8-stage pipeline spanning two nodes: pricing the node-crossing
  // boundary with a slow link must delay startup by exactly the extra lag
  // of that one hop. The schedule carries the boundary costs itself.
  const std::vector<core::StageCost> stages(8, core::StageCost{2.0, 4.0});

  ClusterTopology t;
  t.gpus_per_node = 4;
  t.intra_node.latency_ms = 0.0;
  t.intra_node.bandwidth_gbps = 1e9;  // free
  t.inter_node.latency_ms = 5.0;
  t.inter_node.bandwidth_gbps = 1e9;

  const auto hetero = sim::execute(
      core::build_1f1b(stages, 16, CommModel::from_topology(t, 0, 0.0)));
  const auto uniform = sim::execute(core::build_1f1b(stages, 16, 0.0));
  EXPECT_NEAR(hetero.startup_ms, uniform.startup_ms + 5.0, 1e-9);
}

TEST(Topology, ExecutorValidatesBoundaryVectorSize) {
  const std::vector<core::StageCost> stages(4, core::StageCost{1.0, 2.0});
  auto schedule = core::build_1f1b(stages, 8, 0.1);
  schedule.boundary_comm_ms = {0.1, 0.1};  // needs 3 entries
  EXPECT_THROW(core::validate(schedule), std::logic_error);
  EXPECT_THROW(sim::execute(schedule), std::logic_error);
  schedule.boundary_comm_ms = {0.1, -0.1, 0.1};  // negative cost
  EXPECT_THROW(sim::execute(schedule), std::logic_error);
}

TEST(Metrics, FillDrainDecomposition) {
  // 1F1B on a balanced pipeline: half the bubble is Warmup fill + Cooldown
  // drain; the other half is the interior stall where early stages wait for
  // the first gradients to walk back (the last stage's b_x per micro-batch
  // gates everyone). The per-device fill/drain boundaries must bracket the
  // iteration.
  const std::vector<core::StageCost> stages(4, core::StageCost{2.0, 4.0});
  const auto exec = sim::execute(core::build_1f1b(stages, 8, 0.0));
  const auto m = sim::analyze(exec);
  EXPECT_GT(m.fill_drain_fraction, 0.0);
  EXPECT_LE(m.fill_drain_fraction, 1.0);
  ASSERT_EQ(m.device_first_start_ms.size(), 4u);
  EXPECT_DOUBLE_EQ(m.device_first_start_ms[0], 0.0);
  EXPECT_GT(m.device_first_start_ms[3], 0.0);
  EXPECT_DOUBLE_EQ(m.device_last_end_ms[0], m.iteration_ms);
  // The last stage never idles in the interior: its idle is exactly fill +
  // drain.
  EXPECT_NEAR(m.device_idle_ms[3],
              m.device_first_start_ms[3] +
                  (m.iteration_ms - m.device_last_end_ms[3]),
              1e-9);
}

TEST(Metrics, ImbalanceCreatesInteriorBubbles) {
  // An unbalanced pipeline stalls devices *between* ops as well; the
  // fill/drain share of the bubble drops relative to the balanced case.
  const std::vector<core::StageCost> balanced(4, core::StageCost{2.0, 4.0});
  const std::vector<core::StageCost> skewed{
      {2.0, 4.0}, {4.0, 8.0}, {2.0, 4.0}, {2.0, 4.0}};
  const auto mb = sim::analyze(sim::execute(core::build_1f1b(balanced, 8, 0.0)));
  const auto ms = sim::analyze(sim::execute(core::build_1f1b(skewed, 8, 0.0)));
  EXPECT_LT(ms.fill_drain_fraction, mb.fill_drain_fraction);
  EXPECT_GT(ms.busy_stddev_ms, 0.0);
  EXPECT_GT(ms.bubble_fraction, mb.bubble_fraction);
}

}  // namespace
}  // namespace autopipe
