// Fault-injection suite (ctest label `faults`): the FaultPlan taxonomy,
// fault-aware discrete-event execution, and the Monte-Carlo robustness
// evaluator with its planner knob.
#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "core/schedule.h"
#include "faults/fault_plan.h"
#include "faults/robustness.h"
#include "sim/executor.h"
#include "util/thread_pool.h"

namespace autopipe::faults {
namespace {

// ------------------------------------------------------------- fault plan

TEST(FaultPlan, SlowdownIsProductOfMatchingWindows) {
  FaultPlan plan;
  plan.stragglers.push_back({0, 10.0, 20.0, 2.0});
  plan.stragglers.push_back({0, 15.0, 30.0, 1.5});
  plan.stragglers.push_back({1, 0.0, 100.0, 3.0});
  EXPECT_DOUBLE_EQ(plan.slowdown(0, 5.0), 1.0);    // before both windows
  EXPECT_DOUBLE_EQ(plan.slowdown(0, 12.0), 2.0);   // first only
  EXPECT_DOUBLE_EQ(plan.slowdown(0, 17.0), 3.0);   // overlap: 2.0 * 1.5
  EXPECT_DOUBLE_EQ(plan.slowdown(0, 25.0), 1.5);   // second only
  EXPECT_DOUBLE_EQ(plan.slowdown(0, 20.0), 1.5);   // end is exclusive
  EXPECT_DOUBLE_EQ(plan.slowdown(2, 12.0), 1.0);   // other device untouched
}

TEST(FaultPlan, TransferPaysOutageRetriesThenSpike) {
  FaultPlan plan;
  plan.outages.push_back({0, 10.0, 12.0, 0.5});
  plan.spikes.push_back({0, 0.0, 100.0, 3.0});
  // Departing at 10.0 inside the outage: retries at 10.5, 11.0, ..., first
  // success at 12.0 -> 4 failed attempts, then the spike applies at the
  // delayed departure.
  const TransferOutcome out = plan.transfer(0, 10.0, 1.0);
  EXPECT_EQ(out.retries, 4);
  EXPECT_DOUBLE_EQ(out.lag_ms, (12.0 - 10.0) + 1.0 + 3.0);
  // Departing outside the outage: no retries, spike only.
  const TransferOutcome clean = plan.transfer(0, 50.0, 1.0);
  EXPECT_EQ(clean.retries, 0);
  EXPECT_DOUBLE_EQ(clean.lag_ms, 4.0);
  // Other boundaries are untouched.
  EXPECT_DOUBLE_EQ(plan.transfer(1, 10.0, 1.0).lag_ms, 1.0);
}

TEST(FaultPlan, CrashLookupsAndRuntimeTrigger) {
  FaultPlan plan;
  plan.crashes.push_back({1, 40.0, -1});
  plan.crashes.push_back({1, 25.0, -1});
  ASSERT_NE(plan.crash_for(1), nullptr);
  EXPECT_DOUBLE_EQ(plan.crash_for(1)->at_ms, 25.0);  // earliest wins
  EXPECT_EQ(plan.crash_for(0), nullptr);

  FaultPlan rt;
  rt.crashes.push_back({2, std::numeric_limits<double>::infinity(), 5});
  EXPECT_FALSE(rt.crashes_before_op(2, 4));
  EXPECT_TRUE(rt.crashes_before_op(2, 5));
  EXPECT_TRUE(rt.crashes_before_op(2, 9));
  EXPECT_FALSE(rt.crashes_before_op(0, 9));
}

TEST(FaultPlan, WithoutDeviceRemapsSurvivors) {
  FaultPlan plan;
  plan.stragglers.push_back({0, 0, 10, 2.0});
  plan.stragglers.push_back({1, 0, 10, 2.0});
  plan.stragglers.push_back({2, 0, 10, 2.0});
  plan.crashes.push_back({2, 5.0, -1});
  plan.transients.push_back({1, 3, 1});
  plan.spikes.push_back({0, 0, 10, 1.0});

  const FaultPlan degraded = plan.without_device(1);
  ASSERT_EQ(degraded.stragglers.size(), 2u);
  EXPECT_EQ(degraded.stragglers[0].device, 0);
  EXPECT_EQ(degraded.stragglers[1].device, 1);  // old device 2 shifted down
  ASSERT_EQ(degraded.crashes.size(), 1u);
  EXPECT_EQ(degraded.crashes[0].device, 1);
  EXPECT_TRUE(degraded.transients.empty());  // belonged to the lost device
  // Boundary faults are dropped wholesale: the degraded pipeline has
  // different boundaries.
  EXPECT_TRUE(degraded.spikes.empty());
}

TEST(FaultPlan, ValidateRejectsOutOfRangeAndNonPositive) {
  FaultPlan ok;
  ok.stragglers.push_back({0, 0, 10, 1.5});
  EXPECT_NO_THROW(ok.validate(2, 1));

  FaultPlan bad_device;
  bad_device.stragglers.push_back({5, 0, 10, 1.5});
  EXPECT_THROW(bad_device.validate(2, 1), std::invalid_argument);

  FaultPlan bad_slowdown;
  bad_slowdown.stragglers.push_back({0, 0, 10, 0.5});
  EXPECT_THROW(bad_slowdown.validate(2, 1), std::invalid_argument);

  FaultPlan bad_boundary;
  bad_boundary.spikes.push_back({3, 0, 10, 1.0});
  EXPECT_THROW(bad_boundary.validate(2, 1), std::invalid_argument);

  FaultPlan bad_backoff;
  bad_backoff.outages.push_back({0, 0, 10, 0.0});
  EXPECT_THROW(bad_backoff.validate(2, 1), std::invalid_argument);
}

TEST(FaultPlan, SampledPlansAreSeedDeterministic) {
  FaultDistribution dist;
  dist.outage_prob = 0.3;
  const FaultPlan a = sample_fault_plan(dist, 8, 7, 100.0, 42);
  const FaultPlan b = sample_fault_plan(dist, 8, 7, 100.0, 42);
  ASSERT_EQ(a.stragglers.size(), b.stragglers.size());
  for (std::size_t i = 0; i < a.stragglers.size(); ++i) {
    EXPECT_EQ(a.stragglers[i].device, b.stragglers[i].device);
    EXPECT_DOUBLE_EQ(a.stragglers[i].start_ms, b.stragglers[i].start_ms);
    EXPECT_DOUBLE_EQ(a.stragglers[i].slowdown, b.stragglers[i].slowdown);
  }
  ASSERT_EQ(a.spikes.size(), b.spikes.size());
  ASSERT_EQ(a.outages.size(), b.outages.size());
  // A sampled plan always validates against its own shape.
  EXPECT_NO_THROW(a.validate(8, 7));
  // Different seeds explore different scenarios (with 8 devices at 20%
  // straggler probability, 100 consecutive seeds cannot all coincide).
  bool any_difference = false;
  for (std::uint64_t s = 0; s < 100 && !any_difference; ++s) {
    const FaultPlan c = sample_fault_plan(dist, 8, 7, 100.0, 1000 + s);
    any_difference = c.stragglers.size() != a.stragglers.size() ||
                     c.spikes.size() != a.spikes.size() ||
                     c.outages.size() != a.outages.size();
  }
  EXPECT_TRUE(any_difference);
}

// -------------------------------------------------- fault-aware execution

core::Schedule test_schedule(int stages = 4, int m = 8) {
  std::vector<core::StageCost> costs(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    costs[static_cast<std::size_t>(s)] = {1.0 + 0.1 * s, 2.0 + 0.1 * s};
  }
  return core::build_1f1b(costs, m, 0.25);
}

void expect_identical(const sim::ExecResult& a, const sim::ExecResult& b) {
  EXPECT_EQ(a.iteration_ms, b.iteration_ms);
  EXPECT_EQ(a.startup_ms, b.startup_ms);
  EXPECT_EQ(a.device_busy_ms, b.device_busy_ms);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].start_ms, b.trace[i].start_ms);
    EXPECT_EQ(a.trace[i].end_ms, b.trace[i].end_ms);
    EXPECT_EQ(a.trace[i].device, b.trace[i].device);
  }
  EXPECT_EQ(a.failure.crashed, b.failure.crashed);
  EXPECT_EQ(a.link_retries, b.link_retries);
}

TEST(FaultExec, EmptyPlanIsBitIdenticalToNoPlan) {
  const auto schedule = test_schedule();
  sim::ExecOptions with_jitter;
  with_jitter.per_op_overhead_ms = 0.05;
  with_jitter.jitter_frac = 0.02;
  for (const sim::ExecOptions& base : {sim::ExecOptions{}, with_jitter}) {
    const sim::ExecResult none = sim::execute(schedule, base);
    FaultPlan empty;
    sim::ExecOptions faulted = base;
    faulted.faults = &empty;
    expect_identical(none, sim::execute(schedule, faulted));
    // A non-empty plan whose faults never match is numerically identical
    // too: slowdown() returns exactly 1.0 and transfer() adds exactly 0.
    FaultPlan unmatched;
    unmatched.stragglers.push_back({0, 1e9, 2e9, 4.0});
    unmatched.spikes.push_back({0, 1e9, 2e9, 5.0});
    faulted.faults = &unmatched;
    expect_identical(none, sim::execute(schedule, faulted));
  }
}

TEST(FaultExec, StragglerStretchesWindowedOps) {
  const auto schedule = test_schedule();
  const sim::ExecResult base = sim::execute(schedule);
  FaultPlan plan;
  plan.stragglers.push_back({1, 0.0, std::numeric_limits<double>::infinity(),
                             2.0});
  sim::ExecOptions opts;
  opts.faults = &plan;
  const sim::ExecResult slow = sim::execute(schedule, opts);
  EXPECT_GT(slow.iteration_ms, base.iteration_ms);
  // Device 1's busy time exactly doubles (whole-iteration window).
  EXPECT_NEAR(slow.device_busy_ms[1], 2.0 * base.device_busy_ms[1], 1e-9);
  EXPECT_EQ(slow.device_busy_ms[0], base.device_busy_ms[0]);
  EXPECT_FALSE(slow.failure.crashed);
}

TEST(FaultExec, LinkOutagePaysRetries) {
  const auto schedule = test_schedule();
  const sim::ExecResult base = sim::execute(schedule);
  FaultPlan plan;
  plan.outages.push_back({0, 0.0, 5.0, 0.5});
  sim::ExecOptions opts;
  opts.faults = &plan;
  const sim::ExecResult out = sim::execute(schedule, opts);
  EXPECT_GT(out.link_retries, 0);
  EXPECT_GE(out.iteration_ms, base.iteration_ms);
}

TEST(FaultExec, CrashTruncatesTraceAndReports) {
  const auto schedule = test_schedule();
  const sim::ExecResult base = sim::execute(schedule);
  int total_ops = 0;
  for (const auto& dev : schedule.order) {
    total_ops += static_cast<int>(dev.size());
  }

  FaultPlan plan;
  plan.crashes.push_back({2, base.iteration_ms / 3, -1});
  sim::ExecOptions opts;
  opts.faults = &plan;
  const sim::ExecResult crashed = sim::execute(schedule, opts);
  EXPECT_TRUE(crashed.failure.crashed);
  EXPECT_EQ(crashed.failure.device, 2);
  EXPECT_DOUBLE_EQ(crashed.failure.at_ms, base.iteration_ms / 3);
  EXPECT_GT(crashed.failure.lost_ops, 0);
  EXPECT_EQ(crashed.failure.completed_ops + crashed.failure.lost_ops,
            total_ops);
  EXPECT_EQ(crashed.trace.size(),
            static_cast<std::size_t>(crashed.failure.completed_ops));
  // Every surviving op finished by the crash or ran on another device's
  // already-started work; none may *end* after the crash on the dead device.
  for (const auto& op : crashed.trace) {
    if (op.device == 2) {
      EXPECT_LE(op.end_ms, crashed.failure.at_ms);
    }
  }
  EXPECT_LT(crashed.failure.completed_ops, total_ops);
}

TEST(FaultExec, RuntimeOnlyCrashDoesNotTouchSimTimeline) {
  // A crash armed by after_ops (thread-runtime trigger) has an infinite
  // at_ms: the simulator must treat the plan as harmless.
  const auto schedule = test_schedule();
  const sim::ExecResult base = sim::execute(schedule);
  FaultPlan plan;
  plan.crashes.push_back({1, std::numeric_limits<double>::infinity(), 4});
  sim::ExecOptions opts;
  opts.faults = &plan;
  const sim::ExecResult r = sim::execute(schedule, opts);
  EXPECT_FALSE(r.failure.crashed);
  EXPECT_EQ(r.iteration_ms, base.iteration_ms);
}

// ------------------------------------------------------------- robustness

TEST(Robustness, ZeroTrialsReportsNominalOnly) {
  const auto schedule = test_schedule();
  RobustnessOptions rob;  // trials = 0
  const RobustnessReport r = evaluate_robustness(schedule, {}, rob);
  EXPECT_EQ(r.trials, 0);
  EXPECT_GT(r.nominal_ms, 0.0);
  EXPECT_EQ(r.p50_ms, r.nominal_ms);
  EXPECT_EQ(r.p99_ms, r.nominal_ms);
}

TEST(Robustness, ReportIsBitIdenticalAcrossThreadCounts) {
  const auto schedule = test_schedule();
  RobustnessOptions rob;
  rob.trials = 64;
  rob.seed = 11;
  rob.dist.outage_prob = 0.2;
  const RobustnessReport serial = evaluate_robustness(schedule, {}, rob);
  util::ThreadPool pool4(4);
  const RobustnessReport parallel =
      evaluate_robustness(schedule, {}, rob, &pool4);
  EXPECT_EQ(serial.mean_ms, parallel.mean_ms);
  EXPECT_EQ(serial.p50_ms, parallel.p50_ms);
  EXPECT_EQ(serial.p95_ms, parallel.p95_ms);
  EXPECT_EQ(serial.p99_ms, parallel.p99_ms);
  EXPECT_EQ(serial.worst_ms, parallel.worst_ms);
  EXPECT_EQ(serial.link_retries, parallel.link_retries);
  // Quantiles are ordered and bounded by the extremes.
  EXPECT_LE(serial.p50_ms, serial.p95_ms);
  EXPECT_LE(serial.p95_ms, serial.p99_ms);
  EXPECT_LE(serial.p99_ms, serial.worst_ms);
  EXPECT_GE(serial.p50_ms, serial.nominal_ms);  // faults never speed it up
}

TEST(Robustness, RejectsBadOptions) {
  const auto schedule = test_schedule();
  RobustnessOptions negative;
  negative.trials = -1;
  EXPECT_THROW(evaluate_robustness(schedule, {}, negative),
               std::invalid_argument);
  RobustnessOptions quantile;
  quantile.trials = 4;
  quantile.quantile = 120.0;
  EXPECT_THROW(evaluate_robustness(schedule, {}, quantile),
               std::invalid_argument);
}

// ----------------------------------------------------------- planner knob

costmodel::ModelConfig planner_config() {
  costmodel::ModelSpec spec = costmodel::model_by_name("gpt2-345m");
  return costmodel::build_model_config(spec, {4, 0, true});
}

TEST(PlannerRobustness, KnobOffMatchesNominalSearch) {
  const auto cfg = planner_config();
  const auto nominal = core::plan(cfg, 4, 8);
  EXPECT_FALSE(nominal.robust_ranked);
  EXPECT_EQ(nominal.robustness.trials, 0);
}

TEST(PlannerRobustness, RankedWinnerIsDeterministicAcrossThreads) {
  const auto cfg = planner_config();
  core::PlannerOptions options;
  options.robustness.trials = 32;
  options.robustness.seed = 5;
  options.robustness.candidates = 3;
  const auto serial = core::plan(cfg, 4, 8, options);
  EXPECT_TRUE(serial.robust_ranked);
  EXPECT_EQ(serial.robustness.trials, 32);
  EXPECT_GT(serial.robustness.p95_ms, 0.0);
  // The winner must not depend on the worker count (the determinism
  // contract of the search extends to the Monte-Carlo re-rank).
  for (int threads : {2, 8}) {
    core::PlannerOptions par = options;
    par.threads = threads;
    const auto r = core::plan(cfg, 4, 8, par);
    EXPECT_EQ(r.partition.counts, serial.partition.counts);
    EXPECT_EQ(r.robustness.score_ms, serial.robustness.score_ms);
    EXPECT_EQ(r.robustness.p99_ms, serial.robustness.p99_ms);
  }
  // The robust winner's nominal time can only be >= the nominal optimum.
  const auto nominal = core::plan(cfg, 4, 8);
  EXPECT_GE(serial.sim.iteration_ms, nominal.sim.iteration_ms);
}

}  // namespace
}  // namespace autopipe::faults
