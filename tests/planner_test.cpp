#include <gtest/gtest.h>

#include "core/autopipe.h"
#include "core/balanced_dp.h"
#include "core/planner.h"
#include "costmodel/analytic.h"
#include "costmodel/topology.h"
#include "planners/megatron.h"

namespace autopipe::core {
namespace {

class PlannerTest : public testing::Test {
 protected:
  ModelConfig cfg_ =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
};

TEST_F(PlannerTest, BeatsUniformMegatronPartition) {
  const Partition uniform = planners::megatron_partition(cfg_, 4);
  const double uniform_ms = simulate_pipeline(cfg_, uniform, 8).iteration_ms;
  const PlannerResult r = plan(cfg_, 4, 8);
  EXPECT_LT(r.sim.iteration_ms, uniform_ms);
  // Paper headline: the Planner alone gains 1.05x-1.25x over Megatron-LM.
  EXPECT_GT(uniform_ms / r.sim.iteration_ms, 1.04);
}

TEST_F(PlannerTest, NeverWorseThanAlgorithmOneSeed) {
  for (int depth : {2, 4, 8}) {
    const Partition seed = balanced_partition(cfg_, depth);
    const double seed_ms =
        simulate_pipeline(cfg_, seed, 2 * depth).iteration_ms;
    const PlannerResult r = plan(cfg_, depth, 2 * depth);
    EXPECT_LE(r.sim.iteration_ms, seed_ms + 1e-9) << "depth " << depth;
  }
}

TEST_F(PlannerTest, OutputIsAValidPartition) {
  for (int depth : {2, 3, 4, 6, 8, 12}) {
    const PlannerResult r = plan(cfg_, depth, 2 * depth);
    EXPECT_NO_THROW(validate(cfg_, r.partition)) << "depth " << depth;
    EXPECT_EQ(r.partition.num_stages(), depth);
    EXPECT_GT(r.evaluations, 0);
  }
}

TEST_F(PlannerTest, Deterministic) {
  const PlannerResult a = plan(cfg_, 4, 8);
  const PlannerResult b = plan(cfg_, 4, 8);
  EXPECT_EQ(a.partition.counts, b.partition.counts);
  EXPECT_DOUBLE_EQ(a.sim.iteration_ms, b.sim.iteration_ms);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(PlannerTest, EvaluationCapRespected) {
  PlannerOptions opts;
  opts.max_evaluations = 3;
  const PlannerResult r = plan(cfg_, 4, 8, opts);
  EXPECT_LE(r.evaluations, 3);
  EXPECT_NO_THROW(validate(cfg_, r.partition));
}

TEST_F(PlannerTest, SearchIsFast) {
  // Fig. 12: AutoPipe plans in well under a second even for the deepest
  // configurations (the heuristic prunes via the master stage).
  const PlannerResult r = plan(cfg_, 12, 24);
  EXPECT_LT(r.search_ms, 1000.0);
}

TEST_F(PlannerTest, CooldownAdjustEnforcesEqOne) {
  // Build a scheme that clearly violates Eq. (1): everything after the
  // master crammed into the next stage.
  const int depth = 4;
  Partition skew = balanced_partition(cfg_, depth);
  // Move blocks from the last stage into stage 2 to create a violation.
  while (skew.counts[3] > 2) {
    --skew.counts[3];
    ++skew.counts[2];
  }
  const SimResult before = simulate_pipeline(cfg_, skew, 8);
  const int master = before.master_stage;
  const Partition adjusted = cooldown_adjust(cfg_, skew, master, 8);
  // Eq. (1) holds afterwards (or the master moved, which also terminates).
  const auto costs = stage_costs(cfg_, adjusted);
  const SimResult after = simulate_pipeline(cfg_, adjusted, 8);
  if (after.master_stage == master) {
    double acc = 0;
    for (int s = master + 1; s < depth; ++s) {
      acc += costs[s].load();
      if (s < depth - 1 && adjusted.counts[s] > 1) {
        EXPECT_LE(acc, (s - master) * costs[master].bwd_ms + 1e-6)
            << "Eq. (1) violated at s=" << s;
      }
    }
  }
  EXPECT_NO_THROW(validate(cfg_, adjusted));
}

TEST_F(PlannerTest, LastStageGetsFewerLayersThanMiddle) {
  // The vocabulary head makes the last stage expensive; a balanced plan
  // compensates with fewer transformer layers there (Table II pattern).
  const PlannerResult r = plan(cfg_, 4, 8);
  const auto units = stage_layer_units(cfg_, r.partition);
  EXPECT_LT(units[3], units[1]);
  EXPECT_LT(units[3], units[2]);
}

TEST_F(PlannerTest, ImprovesBalanceOverUniform) {
  const Partition uniform = planners::megatron_partition(cfg_, 4);
  const PlannerResult r = plan(cfg_, 4, 8);
  EXPECT_LT(balance_stddev(cfg_, r.partition), balance_stddev(cfg_, uniform));
}

TEST_F(PlannerTest, FeasibilityPredicateFiltersTheBest) {
  // Forbid the partition the unconstrained planner would pick; the planner
  // must return a different, allowed scheme (and mark it feasible).
  const PlannerResult unconstrained = plan(cfg_, 4, 8);
  PlannerOptions opts;
  opts.feasible = [&](const Partition& p) {
    return !(p == unconstrained.partition);
  };
  const PlannerResult constrained = plan(cfg_, 4, 8, opts);
  EXPECT_TRUE(constrained.feasible);
  EXPECT_NE(constrained.partition.counts, unconstrained.partition.counts);
  EXPECT_GE(constrained.sim.iteration_ms, unconstrained.sim.iteration_ms);
}

TEST_F(PlannerTest, InfeasibleEverywhereFallsBackWithFlag) {
  PlannerOptions opts;
  opts.feasible = [](const Partition&) { return false; };
  const PlannerResult r = plan(cfg_, 4, 8, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_NO_THROW(validate(cfg_, r.partition));  // still a usable fallback
}

TEST_F(PlannerTest, MemoryAwareSearchMatchesMemoryModel) {
  // partition_fits_memory must accept every zoo plan auto_plan emits.
  for (const char* name : {"gpt2-345m", "gpt2-1.3b"}) {
    const auto cfg = costmodel::build_model_config(
        costmodel::model_by_name(name), {16, 0, true});
    const auto r = core::auto_plan(cfg, {4, 512, 0, true});
    const long m = 512 / (16 * r.plan.data_parallel);
    EXPECT_TRUE(core::partition_fits_memory(cfg, r.plan.partition,
                                            static_cast<int>(m)))
        << name;
  }
}

// Planner behaves across the whole model zoo and depth sweep.
struct PlanCase {
  const char* model;
  int depth;
};

class PlannerZooTest : public testing::TestWithParam<PlanCase> {};

TEST_P(PlannerZooTest, ProducesBalancedValidSchemes) {
  const auto [name, depth] = GetParam();
  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name(name), {4, 0, true});
  const PlannerResult r = plan(cfg, depth, 2 * depth);
  EXPECT_NO_THROW(validate(cfg, r.partition));
  const auto loads = stage_loads(cfg, r.partition);
  const double worst = *std::max_element(loads.begin(), loads.end());
  double total = 0;
  for (double l : loads) total += l;
  // Bottleneck within 40% of the perfect-balance bound.
  EXPECT_LT(worst, total / depth * 1.4) << name << " depth " << depth;
}

INSTANTIATE_TEST_SUITE_P(
    ZooSweep, PlannerZooTest,
    testing::Values(PlanCase{"gpt2-345m", 2}, PlanCase{"gpt2-345m", 8},
                    PlanCase{"gpt2-762m", 4}, PlanCase{"gpt2-762m", 9},
                    PlanCase{"gpt2-1.3b", 4}, PlanCase{"gpt2-1.3b", 8},
                    PlanCase{"bert-large", 4}, PlanCase{"bert-large", 12}));

TEST(PlannerComm, UniformCommModelIsBitIdenticalToScalar) {
  // Contract (a): an unset PlannerOptions::comm and an explicit uniform
  // model at config.comm_ms choose the same scheme with the same simulated
  // times, bit-for-bit.
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  PlannerOptions uniform;
  uniform.comm = costmodel::CommModel(cfg.comm_ms);
  const PlannerResult a = plan(cfg, 4, 8);
  const PlannerResult b = plan(cfg, 4, 8, uniform);
  EXPECT_EQ(a.partition.counts, b.partition.counts);
  EXPECT_EQ(a.sim.iteration_ms, b.sim.iteration_ms);
  EXPECT_EQ(a.sim.startup_ms, b.sim.startup_ms);
}

TEST(PlannerComm, TopologyPricingChangesAndImprovesThePlan) {
  // Acceptance criterion: pricing inter-node boundaries with the paper
  // cluster's links (PCIe inside a node, 100G InfiniBand across) makes the
  // Planner choose a different scheme than uniform pricing -- and the
  // hetero-aware scheme simulates strictly better under the prices that
  // the cluster actually charges. Found by scanning the model zoo:
  // gpt2-1.3b at depth 5 diverges with a ~6.6 ms/iteration margin.
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_1_3b(),
                                                 {8, 0, true});
  const auto comm = costmodel::CommModel::from_topology(
      costmodel::paper_cluster(), 0, costmodel::activation_bytes(cfg));
  const int m = 12;
  PlannerOptions serial;
  serial.threads = 1;
  const PlannerResult uniform = plan(cfg, 5, m, serial);
  PlannerOptions hetero = serial;
  hetero.comm = comm;
  const PlannerResult aware = plan(cfg, 5, m, hetero);
  EXPECT_NE(uniform.partition.counts, aware.partition.counts);
  const double uniform_ms =
      simulate_pipeline(stage_costs(cfg, uniform.partition), m, comm)
          .iteration_ms;
  const double aware_ms =
      simulate_pipeline(stage_costs(cfg, aware.partition), m, comm)
          .iteration_ms;
  EXPECT_LT(aware_ms, uniform_ms);
}

}  // namespace
}  // namespace autopipe::core
