#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/autopipe.h"
#include "core/planner.h"
#include "costmodel/config_io.h"
#include "profiler/block_profiler.h"
#include "profiler/calibration.h"
#include "profiler/profile_cache.h"
#include "profiler/session.h"

namespace autopipe::profiler {
namespace {

costmodel::ModelSpec tiny_spec(const std::string& name = "unit-tiny") {
  costmodel::ModelSpec spec;
  spec.name = name;
  spec.num_layers = 2;
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.default_seq = 8;
  spec.causal = true;
  return spec;
}

costmodel::TrainConfig tiny_train() { return {2, 0, true}; }

/// Deterministic fake clock: every call advances by a fixed step, so two
/// profiler runs observe identical "timings".
std::function<double()> fake_clock(double step_ms = 0.5) {
  auto t = std::make_shared<double>(0.0);
  return [t, step_ms] { return *t += step_ms; };
}

ProfilerOptions fast_options() {
  ProfilerOptions opts;
  opts.warmup = 0;
  opts.samples = 1;
  return opts;
}

// ----------------------------------------------------------- BlockProfiler

TEST(BlockProfiler, MeasuredConfigIsDropInForAnalytic) {
  const auto spec = tiny_spec();
  const auto train = tiny_train();
  const BlockProfiler profiler(fast_options());
  const ProfileResult result = profiler.profile(spec, train);
  const auto analytic = costmodel::build_model_config(spec, train);

  ASSERT_EQ(result.config.blocks.size(), analytic.blocks.size());
  ASSERT_EQ(result.measurements.size(), analytic.blocks.size());
  EXPECT_TRUE(result.memory_fields_analytic);
  EXPECT_FALSE(result.host.empty());
  for (std::size_t i = 0; i < analytic.blocks.size(); ++i) {
    const auto& m = result.config.blocks[i];
    const auto& a = analytic.blocks[i];
    EXPECT_EQ(m.name, a.name) << i;
    EXPECT_EQ(m.kind, a.kind) << i;
    // Timings are measured (real wall clock here: positive, not analytic).
    EXPECT_GT(m.fwd_ms, 0.0) << i;
    EXPECT_GT(m.bwd_ms, 0.0) << i;
    // Memory fields are carried over from the analytic model unchanged.
    EXPECT_DOUBLE_EQ(m.param_bytes, a.param_bytes) << i;
    EXPECT_DOUBLE_EQ(m.stash_bytes, a.stash_bytes) << i;
    EXPECT_DOUBLE_EQ(m.work_bytes, a.work_bytes) << i;
    EXPECT_DOUBLE_EQ(m.output_bytes, a.output_bytes) << i;
    EXPECT_DOUBLE_EQ(m.layer_units, a.layer_units) << i;
  }
  EXPECT_DOUBLE_EQ(result.config.comm_ms, analytic.comm_ms);
  // The device name flags the measured provenance.
  EXPECT_NE(result.config.device.name.find("measured("), std::string::npos);
}

TEST(BlockProfiler, SharedLayerTimingsAreMarkedAndEqual) {
  const BlockProfiler profiler(fast_options());
  const ProfileResult result = profiler.profile(tiny_spec(), tiny_train());
  // Blocks: embedding, l0.attn, l0.ffn, l1.attn, l1.ffn, head.
  ASSERT_EQ(result.measurements.size(), 6u);
  EXPECT_FALSE(result.measurements[1].shared);
  EXPECT_TRUE(result.measurements[3].shared);
  EXPECT_DOUBLE_EQ(result.measurements[1].fwd_ms,
                   result.measurements[3].fwd_ms);
  EXPECT_DOUBLE_EQ(result.measurements[2].bwd_ms,
                   result.measurements[4].bwd_ms);
}

TEST(BlockProfiler, DeterministicWithSeededClockAndInputs) {
  // The satellite determinism contract: same seed, samples=1, warmup=0,
  // and a deterministic clock -> two runs agree bit-exactly.
  ProfilerOptions opts = fast_options();
  opts.seed = 7;

  auto run = [&] {
    ProfilerOptions o = opts;
    o.clock_ms = fake_clock();
    return BlockProfiler(o).profile(tiny_spec(), tiny_train());
  };
  const ProfileResult a = run();
  const ProfileResult b = run();

  ASSERT_EQ(a.config.blocks.size(), b.config.blocks.size());
  for (std::size_t i = 0; i < a.config.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.config.blocks[i].fwd_ms, b.config.blocks[i].fwd_ms);
    EXPECT_DOUBLE_EQ(a.config.blocks[i].bwd_ms, b.config.blocks[i].bwd_ms);
  }
  EXPECT_DOUBLE_EQ(a.wall_ms, b.wall_ms);
  // Byte-identical serialized profiles.
  std::stringstream sa, sb;
  costmodel::save_model_config(a.config, sa);
  costmodel::save_model_config(b.config, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(BlockProfiler, RespectsNoRecomputeBackwardPath) {
  // Smoke: the cached-backward path must also produce positive timings.
  costmodel::TrainConfig train = tiny_train();
  train.recompute = false;
  const ProfileResult result =
      BlockProfiler(fast_options()).profile(tiny_spec(), train);
  for (const auto& b : result.config.blocks) {
    EXPECT_GT(b.fwd_ms, 0.0);
    EXPECT_GT(b.bwd_ms, 0.0);
  }
}

TEST(BlockProfiler, RejectsNonsenseOptions) {
  ProfilerOptions opts;
  opts.samples = 0;
  EXPECT_THROW(BlockProfiler{opts}, std::invalid_argument);
  opts = {};
  opts.warmup = -1;
  EXPECT_THROW(BlockProfiler{opts}, std::invalid_argument);
}

// ------------------------------------------------- measured profile I/O

TEST(ProfilerRoundTrip, MeasuredProfileDrivesPlannerIdentically) {
  const ProfileResult measured =
      BlockProfiler(fast_options()).profile(tiny_spec(), tiny_train());

  std::stringstream buffer;
  costmodel::save_model_config(measured.config, buffer);
  const costmodel::ModelConfig loaded = costmodel::load_model_config(buffer);

  const auto a = core::plan(measured.config, 2, 4);
  const auto b = core::plan(loaded, 2, 4);
  EXPECT_EQ(a.partition.counts, b.partition.counts);
  EXPECT_DOUBLE_EQ(a.sim.iteration_ms, b.sim.iteration_ms);

  // And the full facade agrees too (same plan() entry point, zero forks).
  const auto pa = core::auto_plan(measured.config, {4, 64, 2, true});
  const auto pb = core::auto_plan(loaded, {4, 64, 2, true});
  EXPECT_EQ(pa.plan.partition.counts, pb.plan.partition.counts);
  EXPECT_DOUBLE_EQ(pa.evaluation.iteration_ms, pb.evaluation.iteration_ms);
}

// ----------------------------------------------------------- profile cache

CacheKey test_key(const std::string& model_name, const std::string& host) {
  CacheKey key;
  key.spec = tiny_spec(model_name);
  key.train = tiny_train();
  key.host = host;
  return key;
}

TEST(ProfileCache, StoreThenLookupHits) {
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-hit-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  const std::string path = store_profile(dir, key, cfg);
  ASSERT_FALSE(path.empty());

  const CacheLookup hit = load_cached_profile(dir, key);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.path, path);
  EXPECT_EQ(hit.config.num_blocks(), cfg.num_blocks());
  EXPECT_EQ(hit.config.spec.name, "cache-hit-model");
}

TEST(ProfileCache, MissesWhenAbsent) {
  const CacheLookup miss =
      load_cached_profile(testing::TempDir(), test_key("never-stored", "h"));
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.miss_reason, "absent");
}

TEST(ProfileCache, ForeignHostOrDimensionsMiss) {
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-key-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  ASSERT_FALSE(store_profile(dir, key, cfg).empty());

  // Same path, different host -> key digest mismatch.
  CacheKey foreign = key;
  foreign.host = "hostB";
  const CacheLookup by_host = load_cached_profile(dir, foreign);
  EXPECT_FALSE(by_host.hit);
  EXPECT_EQ(by_host.miss_reason, "key");

  // Same name and batch shape but different hidden size -> also a key miss.
  CacheKey resized = key;
  resized.spec.hidden *= 2;
  const CacheLookup by_dim = load_cached_profile(dir, resized);
  EXPECT_FALSE(by_dim.hit);
  EXPECT_EQ(by_dim.miss_reason, "key");

  // Different micro-batch -> different file entirely.
  CacheKey rebatched = key;
  rebatched.train.micro_batch_size = 8;
  EXPECT_EQ(load_cached_profile(dir, rebatched).miss_reason, "absent");
}

TEST(ProfileCache, VersionMismatchMisses) {
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-version-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  const std::string path = store_profile(dir, key, cfg);
  ASSERT_FALSE(path.empty());

  // Rewrite the entry as if an older profiler had produced it.
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  in.close();
  std::string text = contents.str();
  const std::string current =
      "autopipe-profile-cache v" + std::to_string(kProfileCacheVersion);
  const auto pos = text.find(current);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, current.size(), "autopipe-profile-cache v0");
  std::ofstream(path) << text;

  const CacheLookup stale = load_cached_profile(dir, key);
  EXPECT_FALSE(stale.hit);
  EXPECT_EQ(stale.miss_reason, "version");
}

TEST(ProfileCache, StalenessCheck) {
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-stale-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  const long old_stamp = static_cast<long>(std::time(nullptr)) - 10'000;
  ASSERT_FALSE(store_profile(dir, key, cfg, old_stamp).empty());

  EXPECT_TRUE(load_cached_profile(dir, key).hit);  // no age limit
  EXPECT_TRUE(load_cached_profile(dir, key, 100'000).hit);
  const CacheLookup stale = load_cached_profile(dir, key, 100);
  EXPECT_FALSE(stale.hit);
  EXPECT_EQ(stale.miss_reason, "stale");
}

TEST(ProfileCache, CorruptEntryReadsAsMissNotPoison) {
  // The regression this guards: a crash mid-write (or a flipped bit on
  // disk) used to leave a truncated-but-parseable entry that silently fed
  // wrong numbers into later --from-profile runs. With the CRC'd v2 format
  // any such entry is a "corrupt" miss and gets re-measured.
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-corrupt-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  const std::string path = store_profile(dir, key, cfg);
  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(load_cached_profile(dir, key).hit);

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  in.close();
  const std::string original = contents.str();

  // Torn write: drop the last block line. Still a parseable config -- only
  // the CRC notices.
  std::string torn = original;
  torn.resize(original.rfind("block"));
  std::ofstream(path) << torn;
  CacheLookup miss = load_cached_profile(dir, key);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.miss_reason, "corrupt");

  // Single flipped character in a numeric field.
  std::string flipped = original;
  const auto pos = flipped.find("fwd_ms=");
  ASSERT_NE(pos, std::string::npos);
  flipped[pos + 7] = (flipped[pos + 7] == '1') ? '2' : '1';
  std::ofstream(path) << flipped;
  miss = load_cached_profile(dir, key);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.miss_reason, "corrupt");

  // A legacy entry with no CRC line at all is also refused.
  std::string no_crc = original;
  const auto crc_pos = no_crc.find("# profile-crc32");
  ASSERT_NE(crc_pos, std::string::npos);
  const auto crc_end = no_crc.find('\n', crc_pos);
  no_crc.erase(crc_pos, crc_end - crc_pos + 1);
  std::ofstream(path) << no_crc;
  miss = load_cached_profile(dir, key);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.miss_reason, "corrupt");

  // Restoring the pristine bytes restores the hit.
  std::ofstream(path) << original;
  EXPECT_TRUE(load_cached_profile(dir, key).hit);
}

TEST(ProfileCache, StoreWritesAtomically) {
  // No .tmp litter survives a successful store, and storing over an
  // existing entry replaces it wholesale.
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-atomic-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  const std::string path = store_profile(dir, key, cfg);
  ASSERT_FALSE(path.empty());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  EXPECT_FALSE(store_profile(dir, key, cfg).empty());
  EXPECT_TRUE(load_cached_profile(dir, key).hit);
  // An unwritable directory reports failure instead of throwing.
  EXPECT_TRUE(store_profile("/nonexistent-dir/x", key, cfg).empty());
}

TEST(ProfileCache, EntryIsAPlainModelConfig) {
  // A cache entry must load through the vanilla config_io entry point.
  const std::string dir = testing::TempDir();
  const CacheKey key = test_key("cache-plain-model", "hostA");
  const auto cfg = costmodel::build_model_config(key.spec, key.train);
  const std::string path = store_profile(dir, key, cfg);
  const costmodel::ModelConfig loaded = costmodel::load_model_config_file(path);
  EXPECT_EQ(loaded.num_blocks(), cfg.num_blocks());
  EXPECT_DOUBLE_EQ(loaded.comm_ms, cfg.comm_ms);
}

// ---------------------------------------------------------------- session

/// Drops any entry a previous test-binary run left behind, so the miss ->
/// hit sequence starts clean.
void wipe_cache_entry(const std::string& dir, const costmodel::ModelSpec& spec,
                      const std::string& host) {
  CacheKey key;
  key.spec = spec;
  key.train = tiny_train();
  key.host = host;
  std::remove((dir + "/" + cache_file_name(key)).c_str());
}

TEST(Session, MissMeasuresThenHitSkipsMeasurement) {
  SessionOptions session;
  session.cache_dir = testing::TempDir();
  session.profiler = fast_options();
  session.host_override = "session-host";
  const auto spec = tiny_spec("session-model");
  wipe_cache_entry(session.cache_dir, spec, session.host_override);

  const SessionResult first = obtain_profile(spec, tiny_train(), session);
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.miss_reason, "absent");
  EXPECT_FALSE(first.cache_path.empty());
  EXPECT_FALSE(first.measurement.measurements.empty());

  const SessionResult second = obtain_profile(spec, tiny_train(), session);
  EXPECT_TRUE(second.from_cache);
  EXPECT_TRUE(second.miss_reason.empty());
  EXPECT_TRUE(second.measurement.measurements.empty());
  // The reloaded config matches what the first run measured.
  ASSERT_EQ(second.config.blocks.size(), first.config.blocks.size());
  for (std::size_t i = 0; i < first.config.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.config.blocks[i].fwd_ms,
                     first.config.blocks[i].fwd_ms);
  }

  SessionOptions forced = session;
  forced.force_remeasure = true;
  const SessionResult third = obtain_profile(spec, tiny_train(), forced);
  EXPECT_FALSE(third.from_cache);
  EXPECT_EQ(third.miss_reason, "forced");
}

TEST(Session, FacadePlansFromMeasuredProfile) {
  SessionOptions session;
  session.cache_dir = testing::TempDir();
  session.profiler = fast_options();
  session.host_override = "facade-host";
  const auto spec = tiny_spec("facade-model");
  wipe_cache_entry(session.cache_dir, spec, session.host_override);

  const auto planned =
      core::auto_plan_profiled(spec, tiny_train(), session, {4, 64, 2, true});
  EXPECT_FALSE(planned.source.from_cache);
  EXPECT_EQ(planned.result.plan.num_stages(), 2);
  EXPECT_FALSE(planned.result.evaluation.oom);

  const auto replanned =
      core::auto_plan_profiled(spec, tiny_train(), session, {4, 64, 2, true});
  EXPECT_TRUE(replanned.source.from_cache);
  EXPECT_EQ(replanned.result.plan.partition.counts,
            planned.result.plan.partition.counts);
  EXPECT_DOUBLE_EQ(replanned.result.evaluation.iteration_ms,
                   planned.result.evaluation.iteration_ms);
}

// --------------------------------------------------------- drift detection

TEST(BlockProfiler, ProfileKindsMatchesFullRunUnderSeededClock) {
  // A targeted re-measurement replays the exact setup of the full run, so
  // with the deterministic clock the per-kind estimates agree bit-exactly.
  ProfilerOptions opts = fast_options();
  opts.clock_ms = fake_clock();
  const ProfileResult full = BlockProfiler(opts).profile(tiny_spec(),
                                                         tiny_train());

  ProfilerOptions opts2 = fast_options();
  opts2.clock_ms = fake_clock();
  const auto targeted = BlockProfiler(opts2).profile_kinds(
      tiny_spec(), tiny_train(),
      {costmodel::BlockKind::Head, costmodel::BlockKind::Attention,
       costmodel::BlockKind::Attention});
  // Duplicates collapse; output is in canonical kind order.
  ASSERT_EQ(targeted.size(), 2u);
  EXPECT_EQ(targeted[0].kind, costmodel::BlockKind::Attention);
  EXPECT_EQ(targeted[1].kind, costmodel::BlockKind::Head);
  // Blocks: embedding, l0.attn, l0.ffn, l1.attn, l1.ffn, head.
  EXPECT_DOUBLE_EQ(targeted[0].fwd_ms, full.config.blocks[1].fwd_ms);
  EXPECT_DOUBLE_EQ(targeted[0].bwd_ms, full.config.blocks[1].bwd_ms);
  EXPECT_DOUBLE_EQ(targeted[1].fwd_ms, full.config.blocks[5].fwd_ms);
  EXPECT_DOUBLE_EQ(targeted[1].bwd_ms, full.config.blocks[5].bwd_ms);
}

/// Session wired for deterministic drift tests: fake clock, cheap options,
/// 100 s staleness limit and the probe path enabled.
SessionOptions drift_session(const std::string& host) {
  SessionOptions session;
  session.cache_dir = testing::TempDir();
  session.profiler = fast_options();
  session.profiler.clock_ms = fake_clock();
  session.host_override = host;
  session.max_age_seconds = 100;
  session.drift.check = true;
  return session;
}

TEST(Session, DriftCleanProbeReusesStaleEntryAndRefreshesIt) {
  SessionOptions session = drift_session("drift-clean-host");
  const auto spec = tiny_spec("drift-clean-model");
  wipe_cache_entry(session.cache_dir, spec, session.host_override);

  const SessionResult first = obtain_profile(spec, tiny_train(), session);
  ASSERT_FALSE(first.from_cache);

  // Age the entry past the limit, keeping its (clock-derived) timings.
  CacheKey key;
  key.spec = spec;
  key.train = tiny_train();
  key.host = session.host_override;
  const long old_stamp = static_cast<long>(std::time(nullptr)) - 10'000;
  ASSERT_FALSE(
      store_profile(session.cache_dir, key, first.config, old_stamp).empty());
  ASSERT_EQ(load_cached_profile(session.cache_dir, key, 100).miss_reason,
            "stale");

  // The probe reproduces the cached timings (same seed + fake clock), so
  // every kind validates: the stale entry is reused without re-measuring.
  const SessionResult second = obtain_profile(spec, tiny_train(), session);
  EXPECT_TRUE(second.drift_checked);
  EXPECT_TRUE(second.drifted.empty());
  EXPECT_EQ(second.reprofiled_blocks, 0);
  EXPECT_TRUE(second.from_cache);
  EXPECT_TRUE(second.miss_reason.empty());
  ASSERT_EQ(second.config.blocks.size(), first.config.blocks.size());
  for (std::size_t i = 0; i < first.config.blocks.size(); ++i) {
    EXPECT_DOUBLE_EQ(second.config.blocks[i].fwd_ms,
                     first.config.blocks[i].fwd_ms);
    EXPECT_DOUBLE_EQ(second.config.blocks[i].bwd_ms,
                     first.config.blocks[i].bwd_ms);
  }
  // The clean probe re-stamped the entry: the next lookup is a plain hit.
  EXPECT_TRUE(load_cached_profile(session.cache_dir, key, 100).hit);
}

TEST(Session, DriftReprofilesOnlyAffectedKinds) {
  SessionOptions session = drift_session("drift-kind-host");
  const auto spec = tiny_spec("drift-kind-model");
  wipe_cache_entry(session.cache_dir, spec, session.host_override);

  const SessionResult first = obtain_profile(spec, tiny_train(), session);
  ASSERT_FALSE(first.from_cache);
  // Blocks: embedding, l0.attn, l0.ffn, l1.attn, l1.ffn, head.
  ASSERT_EQ(first.config.blocks.size(), 6u);

  // Age the entry AND drift its attention timings far beyond tolerance;
  // nudge FFN within tolerance to prove near-misses are left alone.
  costmodel::ModelConfig tampered = first.config;
  for (auto& b : tampered.blocks) {
    if (b.kind == costmodel::BlockKind::Attention) {
      b.fwd_ms *= 3.0;
      b.bwd_ms *= 3.0;
    } else if (b.kind == costmodel::BlockKind::FFN) {
      b.fwd_ms *= 1.1;
      b.bwd_ms *= 1.1;
    }
  }
  CacheKey key;
  key.spec = spec;
  key.train = tiny_train();
  key.host = session.host_override;
  const long old_stamp = static_cast<long>(std::time(nullptr)) - 10'000;
  ASSERT_FALSE(
      store_profile(session.cache_dir, key, tampered, old_stamp).empty());

  const SessionResult repaired = obtain_profile(spec, tiny_train(), session);
  EXPECT_TRUE(repaired.drift_checked);
  ASSERT_EQ(repaired.drifted.size(), 1u);
  EXPECT_EQ(repaired.drifted[0], costmodel::BlockKind::Attention);
  EXPECT_EQ(repaired.reprofiled_blocks, 2);  // l0.attn + l1.attn
  EXPECT_FALSE(repaired.from_cache);
  EXPECT_EQ(repaired.miss_reason, "stale");

  for (std::size_t i = 0; i < repaired.config.blocks.size(); ++i) {
    const auto& b = repaired.config.blocks[i];
    if (b.kind == costmodel::BlockKind::Attention) {
      // Re-measured at full fidelity: back to the fresh estimate.
      EXPECT_DOUBLE_EQ(b.fwd_ms, first.config.blocks[i].fwd_ms) << i;
      EXPECT_DOUBLE_EQ(b.bwd_ms, first.config.blocks[i].bwd_ms) << i;
    } else {
      // Within-tolerance and untouched kinds keep the cached values
      // bit-exactly (the tampered FFN numbers prove no re-measure ran).
      EXPECT_DOUBLE_EQ(b.fwd_ms, tampered.blocks[i].fwd_ms) << i;
      EXPECT_DOUBLE_EQ(b.bwd_ms, tampered.blocks[i].bwd_ms) << i;
    }
  }
  // The repaired profile was re-stored with a fresh stamp: plain hit next.
  const CacheLookup after = load_cached_profile(session.cache_dir, key, 100);
  ASSERT_TRUE(after.hit);
  EXPECT_DOUBLE_EQ(after.config.blocks[1].fwd_ms, first.config.blocks[1].fwd_ms);
  EXPECT_DOUBLE_EQ(after.config.blocks[2].fwd_ms, tampered.blocks[2].fwd_ms);
}

TEST(Session, DriftDisabledKeepsFullRemeasureBehaviour) {
  SessionOptions session = drift_session("drift-off-host");
  session.drift.check = false;
  const auto spec = tiny_spec("drift-off-model");
  wipe_cache_entry(session.cache_dir, spec, session.host_override);

  const SessionResult first = obtain_profile(spec, tiny_train(), session);
  ASSERT_FALSE(first.from_cache);
  CacheKey key;
  key.spec = spec;
  key.train = tiny_train();
  key.host = session.host_override;
  const long old_stamp = static_cast<long>(std::time(nullptr)) - 10'000;
  ASSERT_FALSE(
      store_profile(session.cache_dir, key, first.config, old_stamp).empty());

  const SessionResult second = obtain_profile(spec, tiny_train(), session);
  EXPECT_FALSE(second.drift_checked);
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(second.miss_reason, "stale");
  EXPECT_FALSE(second.measurement.measurements.empty());
}

// ------------------------------------------------------------- calibration

TEST(Calibration, IdenticalConfigsHaveZeroError) {
  const auto cfg = costmodel::build_model_config(tiny_spec(), tiny_train());
  const CalibrationReport report = calibrate(cfg, cfg);
  EXPECT_EQ(report.rows.size(), cfg.blocks.size());
  EXPECT_DOUBLE_EQ(report.mean_rel_err, 0.0);
  EXPECT_DOUBLE_EQ(report.max_rel_err, 0.0);
}

TEST(Calibration, ReportsRelativeErrorAgainstMeasured) {
  const auto analytic = costmodel::build_model_config(tiny_spec(), tiny_train());
  costmodel::ModelConfig measured = analytic;
  for (auto& b : measured.blocks) {
    b.fwd_ms *= 2.0;  // analytic underestimates by half -> rel err 0.5
    b.bwd_ms *= 2.0;
  }
  const CalibrationReport report = calibrate(measured, analytic);
  EXPECT_NEAR(report.mean_rel_err, 0.5, 1e-12);
  EXPECT_NEAR(report.max_rel_err, 0.5, 1e-12);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"bench\":\"profiler_calibration\""),
            std::string::npos);
  EXPECT_NE(json.find("\"model\":\"unit-tiny\""), std::string::npos);
  // Table renders one row per block.
  EXPECT_EQ(report.table().rows(), measured.blocks.size());
}

TEST(Calibration, RejectsMismatchedStructure) {
  const auto a = costmodel::build_model_config(tiny_spec(), tiny_train());
  auto b = a;
  b.blocks.pop_back();
  EXPECT_THROW(calibrate(a, b), std::invalid_argument);
  auto c = a;
  c.blocks[1].name = "imposter";
  EXPECT_THROW(calibrate(a, c), std::invalid_argument);
}

TEST(Calibration, MeasuredProfileVsAnalyticEndToEnd) {
  const ProfileResult measured =
      BlockProfiler(fast_options()).profile(tiny_spec(), tiny_train());
  const auto analytic = costmodel::build_model_config(tiny_spec(), tiny_train());
  const CalibrationReport report = calibrate(measured.config, analytic);
  ASSERT_EQ(report.rows.size(), measured.config.blocks.size());
  for (const auto& row : report.rows) {
    EXPECT_GE(row.fwd_rel_err, 0.0);
    EXPECT_TRUE(std::isfinite(row.fwd_rel_err)) << row.name;
    EXPECT_TRUE(std::isfinite(row.bwd_rel_err)) << row.name;
  }
  EXPECT_GE(report.max_rel_err, report.mean_rel_err);
}

}  // namespace
}  // namespace autopipe::profiler
