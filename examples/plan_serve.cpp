// Long-lived plan daemon: AutoPipe planning as a service.
//
//   plan_serve [--socket /path/ap.sock] [--no-stdio] [flags]
//
// Serves the line protocol of src/service/protocol.h on stdin/stdout and,
// with --socket, on an AF_UNIX stream socket as well (plan_client talks to
// either). Responses are the only thing written to stdout; logs go to
// stderr, so `printf 'plan ...\nshutdown\n' | plan_serve` emits exactly one
// response per request and can be byte-diffed against `plan_client
// --offline` (the CI determinism smoke).
//
// Flags: --workers N (concurrent plan requests, default 2), --max-queue N
// (admission-control backlog bound; a full queue sheds requests with a
// `busy` reply), --threads N (planner worker threads per search; the plan
// is identical at any value), --max-memos N / --max-history N (cross-
// request cache sizes), --warm-max-changed N (auto warm-start drift bound),
// and the profile source for `source=cache` requests: --cache-dir DIR,
// --max-age SECONDS, --drift (probe stale entries and re-measure only
// drifted block kinds), --drift-tolerance F.
//
// SIGTERM/SIGINT shut the daemon down gracefully: the handler flips an
// atomic flag the server polls, the listener stops accepting, in-flight
// connections drain, and the unix socket file is unlinked -- so `kill` (or
// ctrl-C) never strands a stale socket that would break the next launch.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "service/plan_service.h"
#include "service/server.h"
#include "util/cli.h"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_release); }

void install_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read must EINTR out
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autopipe;
  try {
    const util::Cli cli(argc, argv);
    service::ServiceOptions opts;
    opts.workers = cli.checked_int("workers", 2, 1, 256);
    opts.max_queue = static_cast<std::size_t>(
        cli.checked_int("max-queue", 16, 0, 1 << 20));
    opts.planner_threads = cli.checked_int("threads", 1, 0, 256);
    opts.max_memos =
        static_cast<std::size_t>(cli.checked_int("max-memos", 8, 0, 4096));
    opts.max_history = static_cast<std::size_t>(
        cli.checked_int("max-history", 256, 0, 1 << 20));
    opts.warm_max_changed =
        cli.checked_int("warm-max-changed", 8, 0, 1 << 20);
    opts.session.cache_dir = cli.get("cache-dir", ".");
    opts.session.max_age_seconds = cli.checked_int("max-age", 0, 0, 1 << 30);
    opts.session.drift.check = cli.get_bool("drift", false);
    opts.session.drift.tolerance =
        cli.checked_double("drift-tolerance", 0.25, 0.0, 10.0);

    service::ServerOptions server_opts;
    server_opts.stdio = !cli.get_bool("no-stdio", false);
    server_opts.socket_path = cli.get("socket", "");
    if (!server_opts.stdio && server_opts.socket_path.empty()) {
      throw std::invalid_argument(
          "--no-stdio needs --socket (no transport left to serve)");
    }

    install_signal_handlers();
    server_opts.external_stop = &g_stop;
    service::PlanService service(opts);
    service::PlanServer server(service, server_opts);
    const int rc = server.run();
    if (g_stop.load(std::memory_order_acquire)) {
      std::fprintf(stderr, "plan_serve: signal received, shut down cleanly\n");
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
