// Train a tiny GPT end-to-end through the thread pipeline runtime.
//
//   ./train_tiny_gpt [--stages 4] [--micro-batches 8] [--iters 30]
//                    [--schedule sliced|1f1b|gpipe]
//
// Builds a small causal transformer, partitions it with AutoPipe's
// Algorithm 1 over *measured* per-block step times, then trains it with
// Adam under the chosen pipeline schedule. Before training it verifies the
// §II-B consistency property: the pipelined gradients equal single-process
// gradients.
#include <chrono>
#include <cstdio>
#include <string>

#include "core/balanced_dp.h"
#include "core/schedule.h"
#include "model/data.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace autopipe;
  const util::Cli cli(argc, argv);
  const int stages = cli.get_int("stages", 4);
  const int m = cli.get_int("micro-batches", 8);
  const int iters = cli.get_int("iters", 30);
  const std::string kind_name = cli.get("schedule", "sliced");

  model::TinySpec spec;
  spec.layers = 4;
  spec.hidden = 32;
  spec.heads = 4;
  spec.vocab = 64;
  spec.seq = 8;
  model::TransformerModel net(spec), reference(spec);
  std::printf("tiny GPT: %d layers, hidden %d, vocab %d, %zu parameters, "
              "%d blocks\n",
              spec.layers, spec.hidden, spec.vocab, net.param_count(),
              net.num_blocks());

  // Measure per-block step cost on this machine and let Algorithm 1 split
  // the blocks (the same flow AutoPipe uses with profiled model configs).
  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 4;
  std::vector<double> block_ms(net.num_blocks(), 0.0);
  {
    const auto probe = corpus.next_batch(B, spec.seq);
    model::Tensor x = probe.ids;
    for (int b = 0; b < net.num_blocks(); ++b) {
      const auto t0 = std::chrono::steady_clock::now();
      model::Tensor y = net.block(b).forward(x);
      block_ms[b] = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count() *
                    3.0;  // fwd + ~2x bwd
      x = std::move(y);
    }
  }
  const std::vector<int> counts = core::balanced_counts(block_ms, stages);
  std::printf("partition (blocks per stage):");
  for (int c : counts) std::printf(" %d", c);
  std::printf("\n");

  runtime::PipelineRuntime rt(net, counts);
  costmodel::ScheduleKind kind = costmodel::ScheduleKind::AutoPipeSliced;
  int sliced = std::max(1, stages / 3);
  if (kind_name == "1f1b") {
    kind = costmodel::ScheduleKind::OneFOneB;
    sliced = 0;
  } else if (kind_name == "gpipe") {
    kind = costmodel::ScheduleKind::GPipe;
    sliced = 0;
  }
  const auto schedule = rt.make_schedule(kind, m, sliced);
  std::printf("schedule: %s, %d micro-batches, %d sliced\n",
              costmodel::to_string(kind), m, sliced);

  // Consistency check against single-process training (§II-B).
  const double scale = 1.0 / (B * m * spec.seq);
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  reference.zero_grads();
  const double ref_loss =
      reference.reference_step(batch.ids, batch.targets, scale);
  net.zero_grads();
  const auto check = rt.run_iteration(schedule, micro, scale);
  std::printf("consistency: pipeline loss %.6f vs single-process %.6f, "
              "max grad diff %.2e\n\n",
              check.loss, ref_loss, reference.max_grad_diff(net));

  runtime::Adam adam(3e-3);
  adam.step(net);  // consume the check iteration too
  for (int it = 1; it <= iters; ++it) {
    const auto b = corpus.next_batch(B * m, spec.seq);
    const auto mbs =
        model::SyntheticCorpus::split_micro_batches(b, spec.seq, B);
    net.zero_grads();
    const auto r = rt.run_iteration(schedule, mbs, scale);
    adam.step(net);
    if (it % 5 == 0 || it == 1) {
      std::printf("iter %3d  loss %.4f\n", it, r.loss);
    }
  }
  std::printf("\ndone; loss should have dropped from ~ln(%d)=%.2f toward "
              "the Markov structure's entropy.\n",
              spec.vocab, std::log(static_cast<double>(spec.vocab)));
  return 0;
}
