// Measurement-driven planning workflow (the paper's Fig. 2 front-end):
//
//   autopipe_profile profile   [flags]   measure per-block times, fill cache
//   autopipe_profile plan --from-profile [flags]   plan from measurements
//   autopipe_profile calibrate [flags]   measured-vs-analytic error table
//
// Profiles are cached on disk (--cache-dir, default ".") keyed by model
// spec, micro-batch size, sequence length and host fingerprint: the first
// `profile` measures and writes the cache entry, any later invocation on
// the same host reports a cache hit and skips measurement (--force
// re-measures). `plan` without --from-profile uses the analytic model, so
// the two config sources are directly comparable through the same planner.
//
// Flags: --model <zoo-name|tiny> (default tiny: a CPU-friendly transformer;
// override its shape with --layers/--hidden/--heads/--vocab), --mbs, --seq,
// --warmup, --samples, --inner, --estimator median|trimmed, --trim, --seed,
// --every-layer (time every layer instead of sharing layer-0 timings),
// --max-age <seconds>, --gpus, --gbs, --stages, --threads (planner worker
// threads: 1 = serial, 0 = auto; the plan is identical at any value).
#include <cstdio>
#include <string>

#include "core/autopipe.h"
#include "costmodel/config_io.h"
#include "profiler/calibration.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace autopipe;

costmodel::ModelSpec spec_from(const util::Cli& cli) {
  const std::string name = cli.get("model", "tiny");
  costmodel::ModelSpec spec;
  if (name == "tiny") {
    // Small enough that profiling the real CPU tensor blocks takes
    // milliseconds; still the full Fig. 3 block structure.
    spec.name = "tiny";
    spec.num_layers = 2;
    spec.hidden = 32;
    spec.heads = 4;
    spec.vocab = 128;
    spec.default_seq = 16;
    spec.causal = true;
  } else {
    spec = costmodel::model_by_name(name);
  }
  spec.num_layers = cli.get_int("layers", spec.num_layers);
  spec.hidden = cli.get_int("hidden", spec.hidden);
  spec.heads = cli.get_int("heads", spec.heads);
  spec.vocab = cli.get_int("vocab", spec.vocab);
  return spec;
}

profiler::SessionOptions session_from(const util::Cli& cli) {
  profiler::SessionOptions s;
  s.cache_dir = cli.get("cache-dir", ".");
  s.force_remeasure = cli.get_bool("force", false);
  s.max_age_seconds = cli.get_int("max-age", 0);
  s.profiler.warmup = cli.get_int("warmup", 2);
  s.profiler.samples = cli.get_int("samples", 5);
  s.profiler.inner_iterations = cli.get_int("inner", 1);
  s.profiler.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  s.profiler.share_layer_timings = !cli.get_bool("every-layer", false);
  s.profiler.trim_frac = cli.checked_double("trim", 0.2, 0.0, 0.49);
  if (cli.get("estimator", "median") == "trimmed") {
    s.profiler.estimator = profiler::TimingEstimator::TrimmedMean;
  }
  return s;
}

void print_source(const profiler::SessionResult& source) {
  if (source.from_cache) {
    std::printf("profile cache HIT: %s (no re-measurement)\n",
                source.cache_path.c_str());
  } else {
    std::printf("profile cache MISS (%s): measured and stored %s\n",
                source.miss_reason.c_str(), source.cache_path.c_str());
  }
}

int do_profile(const costmodel::ModelSpec& spec,
               const costmodel::TrainConfig& train,
               const profiler::SessionOptions& session) {
  const auto source = profiler::obtain_profile(spec, train, session);
  print_source(source);
  if (!source.from_cache) {
    util::Table t({"block", "kind", "fwd (ms)", "fwd stddev", "bwd (ms)",
                   "bwd stddev", "shared"});
    for (const auto& m : source.measurement.measurements) {
      t.add_row({m.name, costmodel::to_string(m.kind),
                 util::Table::fmt(m.fwd_ms, 4),
                 util::Table::fmt(m.fwd.stddev, 4),
                 util::Table::fmt(m.bwd_ms, 4),
                 util::Table::fmt(m.bwd.stddev, 4), m.shared ? "yes" : "no"});
    }
    std::printf("%s", t.to_ascii().c_str());
    std::printf("profiling wall time: %.1f ms\n",
                source.measurement.wall_ms);
    std::printf("note: memory/comm fields are analytic; only fwd/bwd times "
                "are measured\n");
  }
  std::printf("total measured fwd %.4f ms, bwd %.4f ms per micro-batch\n",
              source.config.total_fwd_ms(), source.config.total_bwd_ms());
  return 0;
}

int do_plan(const util::Cli& cli, const costmodel::ModelSpec& spec,
            const costmodel::TrainConfig& train,
            const profiler::SessionOptions& session) {
  const int gpus = cli.checked_int("gpus", 4, 1, 1 << 20);
  const long gbs = cli.checked_int("gbs", 64, 1, 1 << 30);
  const int stages = cli.checked_int("stages", 0, 0, 1 << 20);
  const int threads = cli.checked_int("threads", 1, 0, 4096);
  const core::AutoPipeOptions options{gpus, gbs, stages, true, threads};

  core::AutoPipeResult result;
  std::string config_source;
  const std::string from = cli.get("from-profile", "");
  if (!from.empty() && from != "true" && from != "false") {
    // Explicit profile file (any config_io file, cached or hand-written).
    const auto cfg = costmodel::load_model_config_file(from);
    result = core::auto_plan(cfg, options);
    config_source = "profile file " + from;
  } else if (cli.get_bool("from-profile", false)) {
    auto planned = core::auto_plan_profiled(spec, train, session, options);
    print_source(planned.source);
    result = std::move(planned.result);
    config_source = "measured profile";
  } else {
    const auto cfg = costmodel::build_model_config(spec, train);
    result = core::auto_plan(cfg, options);
    config_source = "analytic model";
  }

  std::printf("planned %s from %s: %d stage(s) x %d-way data parallel\n",
              spec.name.c_str(), config_source.c_str(),
              result.plan.num_stages(), result.plan.data_parallel);
  util::Table t({"stage", "blocks", "load (ms/micro-batch)"});
  const auto& counts = result.plan.partition.counts;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    t.add_row({std::to_string(s), std::to_string(counts[s]),
               util::Table::fmt(s < result.evaluation.stage_loads_ms.size()
                                    ? result.evaluation.stage_loads_ms[s]
                                    : 0.0,
                                4)});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("iteration %.3f ms; slicer splits %d micro-batch(es), startup "
              "%.3f -> %.3f ms\n",
              result.evaluation.iteration_ms,
              result.slicing.sliced_micro_batches,
              result.slicing.startup_before_ms,
              result.slicing.startup_after_ms);
  return 0;
}

int do_calibrate(const costmodel::ModelSpec& spec,
                 const costmodel::TrainConfig& train,
                 const profiler::SessionOptions& session) {
  const auto source = profiler::obtain_profile(spec, train, session);
  print_source(source);
  const auto analytic = costmodel::build_model_config(spec, train);
  const auto report = profiler::calibrate(source.config, analytic);
  std::printf("%s", report.table().to_ascii().c_str());
  std::printf("analytic-vs-measured relative error: mean %.3f, max %.3f\n",
              report.mean_rel_err, report.max_rel_err);
  std::printf("(measured times are ground truth; memory/comm fields of the "
              "measured config remain analytic)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s profile|plan|calibrate [--model tiny|<zoo>] "
                 "[--mbs N] [--seq N] [--cache-dir DIR] [--force] "
                 "[--from-profile[=FILE]] [--gpus N] [--gbs N] [--stages N] "
                 "[--threads N]\n",
                 cli.program().c_str());
    return 2;
  }
  const std::string verb = cli.positional()[0];
  try {
    // Flag parsing sits inside the try as well: a bad --threads or an
    // unknown --model is a one-line `error:` + exit 1, not a terminate.
    const costmodel::ModelSpec spec = spec_from(cli);
    const costmodel::TrainConfig train{cli.checked_int("mbs", 2, 1, 1 << 20),
                                       cli.checked_int("seq", 0, 0, 1 << 20),
                                       cli.get_bool("recompute", true)};
    const profiler::SessionOptions session = session_from(cli);
    if (verb == "profile") return do_profile(spec, train, session);
    if (verb == "plan") return do_plan(cli, spec, train, session);
    if (verb == "calibrate") return do_calibrate(spec, train, session);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown verb '%s' (expected profile|plan|calibrate)\n",
               verb.c_str());
  return 2;
}
