// Plan explorer: compare all four planners on one configuration and export
// traces.
//
//   ./plan_explorer --model gpt2-1.3b --gpus 8 --mbs 16 --gbs 512
//                   [--threads 8] [--trace /tmp/autopipe.trace.json]
//                   [--config profile.cfg] [--save-config profile.cfg]
//                   [--topology uniform|paper] [--gpus-per-node 4]
//                   [--zero-bubble] [--schedule auto|<kind>]
//
// --zero-bubble co-searches the schedule kind on AutoPipe's chosen
// partition: the zero-bubble (split-backward) schedule replaces sliced
// 1F1B when it is faster and its deferred weight-gradient states fit
// device memory. --schedule forces the reported/traced schedule to a
// specific kind (parse_schedule_kind grammar) regardless of the search.
//
// --topology paper prices each stage boundary from the cluster layout
// (PCIe inside a node, 100G InfiniBand across) and the model's activation
// size; every planner and the reported iteration times then see the same
// per-boundary costs. --gpus-per-node sets the node width for that pricing
// (and for DAPPLE's placement search in either mode).
//
// Prints a Table III/IV style comparison row (DAPPLE / Piper / AutoPipe /
// Megatron-LM where applicable) and optionally writes the AutoPipe
// schedule as a chrome://tracing JSON file. With --config, the model
// configs are loaded from a profiled file (see costmodel/config_io.h)
// instead of the analytic model; --save-config dumps the analytic profile
// as a starting point for hand tuning.
#include <cstdio>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/autopipe.h"
#include "costmodel/analytic.h"
#include "costmodel/config_io.h"
#include "costmodel/topology.h"
#include "planners/dapple.h"
#include "planners/megatron.h"
#include "planners/piper.h"
#include "sim/executor.h"
#include "trace/chrome_trace.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

std::string devices_of(const autopipe::core::ParallelPlan& plan) {
  if (plan.uniform_dp) {
    return std::to_string(plan.num_stages()) + " stages x dp " +
           std::to_string(plan.data_parallel);
  }
  std::string out = "per-stage [";
  for (std::size_t i = 0; i < plan.stage_devices.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(plan.stage_devices[i]);
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace autopipe;
  const util::Cli cli(argc, argv);
  const std::string model = cli.get("model", "gpt2-345m");
  const int gpus = cli.checked_int("gpus", 4, 1, 1 << 20);
  const int mbs = cli.checked_int("mbs", 32, 1, 1 << 20);
  const long gbs = cli.checked_int("gbs", 512, 1, 1 << 30);
  // Planner worker threads (1 = serial, 0 = auto). Every planner returns
  // the same plan at any value; only the wall clock changes.
  const int threads = cli.checked_int("threads", 1, 0, 4096);
  const int gpus_per_node = cli.checked_int("gpus-per-node", 4, 1, 1 << 20);
  const std::string topology = cli.get("topology", "uniform");
  if (topology != "uniform" && topology != "paper") {
    throw std::invalid_argument("--topology must be 'uniform' or 'paper'");
  }
  // Validate --schedule up front so a typo fails before the planner runs.
  std::optional<costmodel::ScheduleKind> forced;
  if (cli.has("schedule") && cli.get("schedule", "auto") != "auto") {
    forced = costmodel::parse_schedule_kind(cli.get("schedule", "auto"));
  }

  const auto cfg =
      cli.has("config")
          ? costmodel::load_model_config_file(cli.get("config", ""))
          : costmodel::build_model_config(costmodel::model_by_name(model),
                                          {mbs, 0, true});
  if (cli.has("save-config")) {
    const std::string path = cli.get("save-config", "profile.cfg");
    if (costmodel::save_model_config(cfg, path)) {
      std::printf("model configs written to %s\n", path.c_str());
    }
  }
  // Per-boundary comm pricing: uniform keeps the profile's scalar comm_ms;
  // paper derives each hop from the cluster links and the activation size.
  costmodel::ClusterTopology topo = costmodel::paper_cluster();
  topo.gpus_per_node = gpus_per_node;
  const costmodel::CommModel comm =
      topology == "paper"
          ? costmodel::CommModel::from_topology(
                topo, 0, costmodel::activation_bytes(cfg))
          : costmodel::CommModel(cfg.comm_ms);
  std::printf("Planner comparison: %s, %d GPUs, mbs %d, gbs %ld, %s comm\n\n",
              cfg.spec.name.c_str(), gpus, mbs, gbs, topology.c_str());

  util::Table table({"planner", "configuration", "layers per stage",
                     "iteration (ms)", "balance stddev", "plan time (ms)"});
  auto add = [&](const char* name, const core::ParallelPlan& plan) {
    const auto ev = core::evaluate_plan(cfg, plan, gbs, comm);
    std::string layers;
    for (double u : core::stage_layer_units(cfg, plan.partition)) {
      if (!layers.empty()) layers += " ";
      layers += util::Table::fmt(u, 1);
    }
    std::string iter = ev.oom             ? "OOM"
                       : ev.runtime_error ? "runtime error"
                                          : util::Table::fmt(ev.iteration_ms, 1);
    table.add_row({name, devices_of(plan), layers, iter,
                   util::Table::fmt(ev.balance_stddev_ms, 1),
                   util::Table::fmt(plan.planning_ms, 1)});
  };

  planners::DappleOptions dapple{8, gpus_per_node, gbs, threads};
  dapple.topology = topo;
  add("DAPPLE", planners::dapple_plan(cfg, gpus, dapple));
  planners::PiperOptions piper{8, gbs, threads};
  piper.comm = comm;
  add("Piper", planners::piper_plan(cfg, gpus, piper));
  core::AutoPipeOptions ours_opts{gpus, gbs, 0, true, threads};
  ours_opts.comm = comm;
  ours_opts.enable_zero_bubble = cli.has("zero-bubble");
  const auto ours = core::auto_plan(cfg, ours_opts);
  add("AutoPipe", ours.plan);

  core::Schedule schedule = ours.schedule;
  if (forced.has_value()) {
    schedule = core::build_schedule(
        *forced, core::stage_costs(cfg, ours.plan.partition),
        ours.schedule.num_micro_batches, comm,
        {ours.slicing.sliced_micro_batches, 1});
  }
  std::printf("AutoPipe schedule: %s, %.1f ms analytic\n",
              costmodel::to_string(schedule.kind),
              core::evaluate_schedule(schedule).iteration_ms);
  if (planners::megatron_supports(cfg, ours.plan.num_stages()) &&
      gpus % ours.plan.num_stages() == 0) {
    add("Megatron-LM",
        planners::megatron_plan(cfg, gpus, ours.plan.num_stages()));
  }
  std::printf("%s\n", table.to_ascii().c_str());

  if (cli.has("trace")) {
    const auto exec = sim::execute(schedule);
    const std::string path = cli.get("trace", "autopipe.trace.json");
    if (trace::write_chrome_trace(exec, path)) {
      std::printf("AutoPipe schedule trace written to %s (open in "
                  "chrome://tracing)\n",
                  path.c_str());
    }
  }
  return 0;
} catch (const std::exception& e) {
  // One-line diagnostic and a nonzero exit on malformed profile files, bad
  // flag values, or any other configuration error -- never a raw terminate.
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
