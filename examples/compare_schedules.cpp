// Side-by-side timelines of the four schedules on one partition.
//
//   ./compare_schedules [--model gpt2-345m] [--stages 4] [--mbs 4]
//                       [--micro-batches 8] [--chunks 2]
//                       [--topology uniform|paper] [--gpus-per-node 4]
//                       [--schedule all|1f1b|gpipe|interleaved|sliced|
//                                   zero-bubble]
//
// --schedule narrows the rendering to one kind (parse_schedule_kind
// grammar); the default shows every schedule the configuration supports.
//
// --topology paper prices every stage boundary from the cluster layout
// (PCIe within a node, InfiniBand across) and the model's activation size;
// all four schedules then carry those per-boundary costs.
//
// Renders GPipe, plain 1F1B, Megatron-LM's interleaved 1F1B, AutoPipe's
// sliced 1F1B and the zero-bubble split-backward schedule over the same
// model, with bubble fractions and startup overheads -- the visual story of
// Figs. 5, 8 and 14.
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/autopipe.h"
#include "core/planner.h"
#include "core/slicer.h"
#include "costmodel/analytic.h"
#include "costmodel/topology.h"
#include "planners/megatron.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "trace/timeline.h"
#include "util/cli.h"

int main(int argc, char** argv) try {
  using namespace autopipe;
  const util::Cli cli(argc, argv);
  const std::string model = cli.get("model", "gpt2-345m");
  const int stages = cli.checked_int("stages", 4, 1, 1 << 10);
  const int mbs = cli.checked_int("mbs", 4, 1, 1 << 20);
  const int m = cli.checked_int("micro-batches", 8, 1, 1 << 20);
  const int chunks = cli.checked_int("chunks", 2, 1, 1 << 10);
  const int gpus_per_node = cli.checked_int("gpus-per-node", 4, 1, 1 << 20);
  const std::string topology = cli.get("topology", "uniform");
  if (topology != "uniform" && topology != "paper") {
    throw std::invalid_argument("--topology must be 'uniform' or 'paper'");
  }
  const std::string only = cli.get("schedule", "all");
  std::optional<costmodel::ScheduleKind> filter;
  if (only != "all") filter = costmodel::parse_schedule_kind(only);
  const auto want = [&](costmodel::ScheduleKind kind) {
    return !filter.has_value() || *filter == kind;
  };

  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name(model), {mbs, 0, true});
  costmodel::ClusterTopology topo = costmodel::paper_cluster();
  topo.gpus_per_node = gpus_per_node;
  const costmodel::CommModel comm =
      topology == "paper"
          ? costmodel::CommModel::from_topology(
                topo, 0, costmodel::activation_bytes(cfg))
          : costmodel::CommModel(cfg.comm_ms);

  auto show = [&](const char* title, const core::Schedule& schedule) {
    const auto exec = sim::execute(schedule);
    const auto metrics = sim::analyze(exec);
    std::printf("--- %s: iteration %.1f ms, startup %.1f ms, bubble %.1f%%\n",
                title, metrics.iteration_ms, metrics.startup_ms,
                100.0 * metrics.bubble_fraction);
    std::printf("%s\n", trace::render_timeline(exec, {100, false}).c_str());
  };

  // Megatron-LM's uniform partition hosts GPipe/1F1B/interleaved.
  const auto uniform = planners::megatron_partition(cfg, stages);
  const auto uniform_costs = core::stage_costs(cfg, uniform);
  if (want(costmodel::ScheduleKind::GPipe)) {
    show("GPipe (uniform partition)",
         core::build_gpipe(uniform_costs, m, comm));
  }
  if (want(costmodel::ScheduleKind::OneFOneB)) {
    show("1F1B (uniform partition)",
         core::build_1f1b(uniform_costs, m, comm));
  }
  if (want(costmodel::ScheduleKind::Interleaved)) {
    if (planners::megatron_interleaved_supports(cfg, stages, chunks) &&
        m % stages == 0) {
      show("Interleaved 1F1B (uniform partition)",
           core::build_interleaved(
               planners::megatron_interleaved_costs(cfg, stages, chunks), m,
               comm));
    } else {
      std::printf("--- Interleaved 1F1B: X (layers %% (stages*chunks) != 0 "
                  "-- the Fig. 14(b) constraint)\n\n");
    }
  }

  // AutoPipe: planned partition + sliced warmup; zero-bubble reuses the
  // same planned partition (its per-stage costs carry the B/W split).
  const auto planned = core::plan(cfg, stages, m);
  const auto costs = core::stage_costs(cfg, planned.partition);
  if (want(costmodel::ScheduleKind::AutoPipeSliced)) {
    const auto slicing = core::solve_slicing(costs, comm, m);
    show("AutoPipe (planned partition + sliced 1F1B)",
         core::build_sliced_1f1b(costs, m, comm,
                                 slicing.sliced_micro_batches));
  }
  if (want(costmodel::ScheduleKind::ZeroBubble)) {
    show("Zero-bubble (planned partition, split backward)",
         core::make_zero_bubble(costs, m, comm));
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
