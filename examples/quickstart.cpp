// Quickstart: plan GPT-2 345M on 4 GPUs and inspect the result.
//
//   ./quickstart [--model gpt2-345m] [--gpus 4] [--stages 4] [--mbs 4]
//                [--gbs 32]
//
// Walks the full AutoPipe flow of Fig. 2: build model configs, run the
// Planner (balanced sub-layer partition), run the Slicer (micro-batch
// slicing), and show the resulting pipeline against Megatron-LM's uniform
// baseline, including an ASCII timeline of both schedules.
#include <cstdio>
#include <string>

#include "core/autopipe.h"
#include "planners/megatron.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "trace/timeline.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace autopipe;
  const util::Cli cli(argc, argv);
  const std::string model = cli.get("model", "gpt2-345m");
  const int gpus = cli.get_int("gpus", 4);
  const int stages = cli.get_int("stages", 4);
  const int mbs = cli.get_int("mbs", 4);
  const long gbs = cli.get_int("gbs", 32);

  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name(model), {mbs, 0, true});
  std::printf("AutoPipe quickstart: %s, %d GPUs, micro-batch %d, global "
              "batch %ld\n\n",
              cfg.spec.name.c_str(), gpus, mbs, gbs);

  // --- Plan.
  const auto result = core::auto_plan(cfg, {gpus, gbs, stages, true});
  const auto units = core::stage_layer_units(cfg, result.plan.partition);
  const auto loads = core::stage_loads(cfg, result.plan.partition);
  util::Table table({"stage", "layers", "load (ms/micro-batch)"});
  for (std::size_t s = 0; s < units.size(); ++s) {
    table.add_row({std::to_string(s), util::Table::fmt(units[s], 1),
                   util::Table::fmt(loads[s], 1)});
  }
  std::printf("Planner result (pipeline depth %d, data parallel %d):\n%s\n",
              result.plan.num_stages(), result.plan.data_parallel,
              table.to_ascii().c_str());
  std::printf("Slicer: split the first %d micro-batch(es); startup %.1f ms "
              "-> %.1f ms\n\n",
              result.slicing.sliced_micro_batches,
              result.slicing.startup_before_ms,
              result.slicing.startup_after_ms);

  // --- Compare against Megatron-LM's uniform partition on the executor.
  const auto exec_ours = sim::execute(result.schedule);
  std::printf("AutoPipe schedule (sliced 1F1B):\n%s\n",
              trace::render_timeline(exec_ours).c_str());
  if (planners::megatron_supports(cfg, result.plan.num_stages())) {
    const auto mega = planners::megatron_partition(cfg, result.plan.num_stages());
    const auto mega_costs = core::stage_costs(cfg, mega);
    const auto exec_mega = sim::execute(core::build_1f1b(
        mega_costs, result.schedule.num_micro_batches, cfg.comm_ms));
    std::printf("Megatron-LM uniform 1F1B:\n%s\n",
                trace::render_timeline(exec_mega).c_str());
    std::printf("iteration: Megatron-LM %.1f ms, AutoPipe %.1f ms "
                "(speedup %.2fx); startup %.1f -> %.1f ms\n",
                exec_mega.iteration_ms, exec_ours.iteration_ms,
                exec_mega.iteration_ms / exec_ours.iteration_ms,
                exec_mega.startup_ms, exec_ours.startup_ms);
  }
  return 0;
}
