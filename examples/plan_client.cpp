// Client and offline replayer for the plan daemon.
//
//   plan_client --offline "plan id=1 model=gpt2-345m gpus=8 gbs=64"
//   plan_client --socket /path/ap.sock "plan ..." ["plan ..." ...]
//   plan_client --socket /path/ap.sock --verify "plan ..."
//
// Each positional argument is one request line. --offline computes the
// canonical response in-process (fresh state, no daemon) -- the reference
// the determinism contract is checked against. --socket sends the requests
// over the daemon's unix socket and prints each response. --verify
// additionally replays every `ok` response offline, seeding from the warm
// hint the daemon echoed, and byte-compares the canonical parts: a
// mismatch prints both lines and exits 1, otherwise each request prints
// `verified`. The connection retries briefly so a just-launched daemon
// (CI: `plan_serve --socket ... --no-stdio &`) wins the race.
//
// --timeout-ms N bounds EVERY wait on the daemon -- connect retries and
// each response read -- with one deadline per operation. On expiry the
// client prints `error: ...` on stderr and exits 1 instead of blocking
// forever on a hung or wedged daemon (the failure mode a supervisor
// consulting the daemon mid-recovery cannot afford). 0 (the default)
// preserves the historical behaviour: bounded connect retries, unbounded
// reads.
//
// Connect retries pace themselves with a seeded util::Backoff (20 ms base,
// doubling to a 500 ms cap, 10% deterministic jitter) and are bounded by
// --retries N attempts (default 25) as well as the --timeout-ms deadline,
// whichever trips first -- so a refused or never-listening socket fails
// fast and reproducibly instead of hammering at a fixed cadence.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/backoff.h"
#include "util/cli.h"

namespace {

using namespace autopipe;

using clock_t_ = std::chrono::steady_clock;

/// Connects with seeded exponential-backoff retries, bounded both by
/// `max_attempts` and (when positive) the `timeout_ms` deadline --
/// whichever trips first. The backoff is deterministic (fixed seed), so a
/// given failure reproduces with the same cadence every run.
int connect_with_retry(const std::string& path, double timeout_ms,
                       int max_attempts) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const clock_t_::time_point deadline =
      clock_t_::now() + std::chrono::duration_cast<clock_t_::duration>(
                            std::chrono::duration<double, std::milli>(
                                timeout_ms > 0 ? timeout_ms : 5000.0));
  util::Backoff backoff({/*base_ms=*/20.0, /*multiplier=*/2.0,
                         /*max_ms=*/500.0, /*jitter_frac=*/0.1,
                         /*seed=*/0x9e3779b9});
  int attempts = 0;
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    ++attempts;
    if (attempts >= max_attempts || clock_t_::now() >= deadline) break;
    util::Backoff::sleep_for_ms(backoff.next_ms());
  }
  throw std::runtime_error(
      "could not connect to " + path + " after " + std::to_string(attempts) +
      " attempt(s)" +
      (timeout_ms > 0
           ? " (deadline " + std::to_string(timeout_ms) + " ms)"
           : ""));
}

void send_line(int fd, const std::string& line) {
  const std::string data = line + "\n";
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("write to daemon failed");
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Reads one response line; a positive `timeout_ms` is a per-response
/// deadline enforced with poll() so a hung daemon (accepted the connection,
/// never answers) cannot block the client forever.
std::string read_line(int fd, double timeout_ms) {
  const clock_t_::time_point deadline =
      clock_t_::now() + std::chrono::duration_cast<clock_t_::duration>(
                            std::chrono::duration<double, std::milli>(
                                timeout_ms > 0 ? timeout_ms : 0.0));
  std::string out;
  char c;
  while (true) {
    if (timeout_ms > 0) {
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - clock_t_::now());
      if (remaining.count() <= 0) {
        throw std::runtime_error("timed out after " +
                                 std::to_string(timeout_ms) +
                                 " ms waiting for the daemon's response");
      }
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(remaining.count()));
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("poll on daemon connection failed");
      }
      if (ready == 0) continue;  // deadline re-checked at loop head
    }
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("read from daemon failed");
    }
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    if (c == '\n') return out;
    out.push_back(c);
  }
}

/// Offline reference for a request line: parse, resolve the warm hint the
/// way a fresh daemon would (explicit counts only -- no history), solve.
std::string offline_for(const std::string& line) {
  const service::ParsedLine parsed = service::parse_line(line);
  if (!parsed.error.empty()) {
    throw std::invalid_argument("bad request '" + line + "': " + parsed.error);
  }
  if (parsed.verb != service::Verb::Plan) {
    throw std::invalid_argument("--offline only replays plan requests");
  }
  return service::offline_response(
      parsed.request, service::parse_warm_hint("warm=" + parsed.request.warm));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    std::vector<std::string> requests = cli.positional();
    // util::Cli parses `--offline "plan ..."` as flag + value; reclaim the
    // swallowed request line so the natural invocation order works. (A bare
    // `--offline` keeps the parser's boolean "true" sentinel, which is
    // never a valid request line.)
    auto mode_flag = [&](const char* name) {
      if (!cli.has(name)) return false;
      const std::string value = cli.get(name, "true");
      if (value != "true") requests.insert(requests.begin(), value);
      return true;
    };
    const bool offline = mode_flag("offline");
    const bool verify = mode_flag("verify");
    if (requests.empty()) {
      throw std::invalid_argument(
          "no request lines given (pass e.g. \"plan id=1 model=gpt2-345m\")");
    }

    if (offline) {
      for (const std::string& line : requests) {
        std::printf("%s\n", offline_for(line).c_str());
      }
      return 0;
    }

    const std::string socket_path = cli.get("socket", "");
    if (socket_path.empty()) {
      throw std::invalid_argument("need --socket PATH or --offline");
    }
    const double timeout_ms =
        cli.checked_double("timeout-ms", 0.0, 0.0, 3600000.0);
    const int retries = cli.checked_int("retries", 25, 1, 1 << 20);
    const int fd = connect_with_retry(socket_path, timeout_ms, retries);
    int rc = 0;
    for (const std::string& line : requests) {
      send_line(fd, line);
      const std::string response = read_line(fd, timeout_ms);
      if (!verify) {
        std::printf("%s\n", response.c_str());
        continue;
      }
      if (response.rfind("ok ", 0) != 0) {
        std::printf("%s\n", response.c_str());
        rc = 1;
        continue;
      }
      // Replay offline with the daemon's echoed warm hint; the canonical
      // parts must agree byte-for-byte (the service determinism contract).
      const service::ParsedLine parsed = service::parse_line(line);
      const std::string offline = service::offline_response(
          parsed.request, service::parse_warm_hint(response));
      if (service::canonical_part(response) == offline) {
        std::printf("verified\n");
      } else {
        std::printf("MISMATCH\n  served : %s\n  offline: %s\n",
                    service::canonical_part(response).c_str(),
                    offline.c_str());
        rc = 1;
      }
    }
    ::close(fd);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
