// Chaos lab: the self-healing supervisor under a seeded fault barrage
// (DESIGN.md §10).
//
//   chaos_lab soak    --dir PATH [flags]  seeded mixed-fault soak: crashes,
//                     hard hangs, stragglers, transient storms and torn
//                     checkpoint writes, all on one supervisor run. The run
//                     must COMPLETE and end bit-identical to an unfaulted
//                     run of the same step count (Replace-mode recoveries
//                     are state-exact).
//   chaos_lab hang    --dir PATH [flags]  one hard hang: a worker wedges
//                     silently mid-iteration; the plan-aware watchdog must
//                     cancel it, the incident must classify as Hang, and
//                     the finished run must still be bit-identical.
//   chaos_lab degrade --dir PATH [flags]  device loss without a spare: the
//                     supervisor restores the newest checkpoint resharded
//                     onto N-1 survivors (Degrade mode) and finishes within
//                     1e-4 of the unfaulted run (same math, different
//                     gradient accumulation order).
//   chaos_lab corrupt --dir PATH [flags]  seeded silent-data-corruption
//                     soak: every scripted incident is a single bit flip
//                     (activation in flight, gradient in flight, weight or
//                     optimizer state between steps) that no fail-stop
//                     detector sees. With the guard layer on, EVERY flip
//                     must be detected, classified Corruption, recovered
//                     (retry in place for in-flight flips, verified-clean
//                     restore for state flips) and the finished run must be
//                     bit-identical to the unfaulted reference.
//                     Flags: --norm-window N adds the gradient-norm guard.
//
// Common flags: --steps N, --seed N,
// --schedule 1f1b|gpipe|sliced|interleaved|zero-bubble (--kind is an alias),
// --interval K (checkpoint every K steps), --grace-ms MS (watchdog floor),
// --budget N (restart budget). Soak: --incidents N, --straggler-ms MS.
// Degrade: --at STEP (when the device dies), --oracle "c0,c1" (explicit
// partition override, the plan-oracle hook), --plan-socket PATH
// [--timeout-ms MS] (consult a running plan_serve daemon; the daemon plans
// zoo models, so for this toy model its answer is rejected by shape and the
// supervisor demonstrably falls back to the local replanner instead of
// dying or blocking).
//
// Every verb exits 0 only when its acceptance property held; failures
// print `error: ...` on stderr and exit 1.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "costmodel/analytic.h"
#include "costmodel/memory.h"
#include "runtime/train_session.h"
#include "supervisor/chaos.h"
#include "supervisor/supervisor.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace autopipe;

/// The CPU-scale transformer every verb trains: 3 layers -> 8 blocks,
/// enough for a 3-stage pipeline with headroom to degrade to 2.
model::TinySpec tiny_spec() {
  model::TinySpec s;
  s.layers = 3;
  s.hidden = 16;
  s.heads = 2;
  s.vocab = 32;
  s.seq = 4;
  return s;
}

/// The analytic ModelConfig describing the same block array as tiny_spec()
/// -- what restores and degraded replans re-partition.
costmodel::ModelConfig tiny_config() {
  const model::TinySpec t = tiny_spec();
  costmodel::ModelSpec spec;
  spec.name = "tiny";
  spec.num_layers = t.layers;
  spec.hidden = t.hidden;
  spec.heads = t.heads;
  spec.vocab = t.vocab;
  spec.default_seq = t.seq;
  spec.causal = t.causal;
  return costmodel::build_model_config(spec, {4, 0, true});
}

/// Largest |a - b| across two captured states' parameters, or 1e30 on any
/// structural mismatch (the degraded path compares with a tolerance because
/// a different partition accumulates gradients in another order).
double max_param_diff(const ckpt::TrainState& a, const ckpt::TrainState& b) {
  double worst = 0;
  if (a.blocks.size() != b.blocks.size()) return 1e30;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].params.size() != b.blocks[i].params.size()) return 1e30;
    for (std::size_t p = 0; p < a.blocks[i].params.size(); ++p) {
      const auto& pa = a.blocks[i].params[p];
      const auto& pb = b.blocks[i].params[p];
      if (pa.value.size() != pb.value.size()) return 1e30;
      for (std::size_t k = 0; k < pa.value.size(); ++k) {
        worst = std::max(worst, std::fabs(static_cast<double>(pa.value[k]) -
                                          static_cast<double>(pb.value[k])));
      }
    }
  }
  return worst;
}

/// Shared session shape: the supervised run and the unfaulted reference use
/// identical options except for checkpointing and fault hooks.
runtime::TrainSessionOptions base_session(const util::Cli& cli) {
  runtime::TrainSessionOptions opts;
  opts.spec = tiny_spec();
  opts.counts = {2, 3, 3};
  // --schedule is the canonical spelling (shared parse_schedule_kind
  // grammar: 1f1b|gpipe|interleaved|sliced|zero-bubble); --kind stays as a
  // compatible alias.
  opts.kind = costmodel::parse_schedule_kind(
      cli.get("schedule", cli.get("kind", "1f1b")));
  opts.sliced =
      opts.kind == costmodel::ScheduleKind::AutoPipeSliced ? 1 : 0;
  opts.micro_batch = 2;
  opts.num_micro_batches = 6;
  return opts;
}

supervisor::SupervisorOptions base_supervisor(const util::Cli& cli,
                                              const std::string& dir,
                                              int steps) {
  supervisor::SupervisorOptions o;
  o.session = base_session(cli);
  o.session.ckpt_dir = dir;
  o.session.ckpt_interval = cli.checked_int("interval", 2, 1, 1 << 20);
  o.session.ckpt_keep = 3;
  o.config = tiny_config();
  o.target_steps = steps;
  o.watchdog.grace_ms = cli.checked_double("grace-ms", 1500.0, 50.0, 1e6);
  return o;
}

struct Reference {
  ckpt::TrainState state;
  std::vector<double> losses;
};

/// Unfaulted reference run to the same step count (no checkpointing -- the
/// verification leg must not disturb the soak's checkpoint directory).
Reference reference_run(const util::Cli& cli, int steps) {
  runtime::TrainSession ref(base_session(cli));
  for (int i = 0; i < steps; ++i) ref.step();
  return {ref.capture(), ref.losses()};
}

void print_report(const supervisor::SupervisorReport& report) {
  util::Table t({"step", "class", "action", "device", "detect (ms)",
                 "downtime (ms)"});
  for (const supervisor::Incident& inc : report.incidents) {
    t.add_row({std::to_string(inc.step), supervisor::to_string(inc.cls),
               supervisor::to_string(inc.action),
               inc.device >= 0 ? std::to_string(inc.device) : "-",
               util::Table::fmt(inc.detect_ms),
               util::Table::fmt(inc.downtime_ms)});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::map<std::string, int> per_class;
  for (const supervisor::Incident& inc : report.incidents) {
    ++per_class[supervisor::to_string(inc.cls)];
  }
  std::string classes;
  for (const auto& [name, n] : per_class) {
    if (!classes.empty()) classes += ", ";
    classes += name + " x" + std::to_string(n);
  }
  std::printf("%zu incident(s) (%s), %d recovery action(s), "
              "total downtime %.1f ms\n",
              report.incidents.size(),
              classes.empty() ? "none" : classes.c_str(),
              report.recovery_actions, report.total_downtime_ms);
}

/// Asserts the supervised run ended bit-identical to `ref` -- the Replace-
/// mode acceptance property: every recovery was state-exact.
int check_bit_identical(const supervisor::Supervisor& sup,
                        const supervisor::SupervisorReport& report,
                        const Reference& ref) {
  const ckpt::TrainState got = sup.session().capture();
  const ckpt::TrainState& want = ref.state;
  if (got.blocks != want.blocks || got.data_rng != want.data_rng ||
      got.adam_t != want.adam_t) {
    std::fprintf(stderr, "error: final state diverged from the unfaulted "
                         "run (recoveries were not state-exact)\n");
    return 1;
  }
  for (std::size_t i = 0; i < report.losses.size(); ++i) {
    if (report.losses[i] != ref.losses[i]) {
      std::fprintf(stderr,
                   "error: loss at step %zu diverged (%.17g vs %.17g)\n",
                   i + 1, report.losses[i], ref.losses[i]);
      return 1;
    }
  }
  std::printf("final state and all %zu per-step losses bit-identical to "
              "the unfaulted run\n", report.losses.size());
  return 0;
}

int do_soak(const util::Cli& cli, const std::string& dir) {
  const int steps = cli.checked_int("steps", 12, 1, 1 << 20);
  const int incidents = cli.checked_int("incidents", 6, 0, 1 << 20);
  const auto seed =
      static_cast<std::uint64_t>(cli.checked_int("seed", 7, 0, 1 << 30));

  supervisor::ChaosScriptOptions copts;
  copts.steps = steps;
  copts.devices = 3;
  copts.ops_per_device = 12;  // 2 * num_micro_batches ops per device
  copts.incidents = incidents;
  copts.straggler_delay_ms =
      cli.checked_double("straggler-ms", 40.0, 0.0, 1e6);
  const supervisor::ChaosScript script =
      supervisor::ChaosScript::sample(copts, seed);

  supervisor::SupervisorOptions o = base_supervisor(cli, dir, steps);
  o.chaos = &script;
  o.restart_budget =
      cli.checked_int("budget", 2 * incidents + 6, 1, 1 << 20);

  std::printf("soak: %d step(s), %zu scripted event(s), seed %llu\n", steps,
              script.events.size(),
              static_cast<unsigned long long>(seed));
  supervisor::Supervisor sup(o);
  const supervisor::SupervisorReport report = sup.run();
  print_report(report);
  if (!report.completed) {
    std::fprintf(stderr, "error: soak aborted at step %d: %s\n",
                 report.steps_done, report.abort_reason.c_str());
    return 1;
  }
  const Reference ref = reference_run(cli, steps);
  return check_bit_identical(sup, report, ref);
}

int do_hang(const util::Cli& cli, const std::string& dir) {
  const int steps = cli.checked_int("steps", 4, 2, 1 << 20);

  supervisor::ChaosScript script;
  supervisor::ChaosEvent ev;
  ev.step = cli.checked_int("at", 1, 0, steps - 1);
  ev.kind = supervisor::ChaosKind::Hang;
  ev.device = cli.checked_int("device", 1, 0, 2);
  ev.op_index = 2;
  script.events.push_back(ev);

  supervisor::SupervisorOptions o = base_supervisor(cli, dir, steps);
  o.chaos = &script;
  o.watchdog.grace_ms = cli.checked_double("grace-ms", 800.0, 50.0, 1e6);

  std::printf("hang: device %d wedges silently at step %d; watchdog grace "
              "%.0f ms\n", ev.device, ev.step + 1, o.watchdog.grace_ms);
  supervisor::Supervisor sup(o);
  const supervisor::SupervisorReport report = sup.run();
  print_report(report);
  if (!report.completed) {
    std::fprintf(stderr, "error: run aborted: %s\n",
                 report.abort_reason.c_str());
    return 1;
  }
  const auto hangs = report.of_class(supervisor::IncidentClass::Hang);
  if (hangs.empty()) {
    std::fprintf(stderr, "error: the hang was never classified as Hang\n");
    return 1;
  }
  std::printf("watchdog detected the hang in %.1f ms (device %d)\n",
              hangs.front()->detect_ms, hangs.front()->device);
  const Reference ref = reference_run(cli, steps);
  return check_bit_identical(sup, report, ref);
}

/// Parses "c0,c1,..." into counts; throws on junk.
std::vector<int> parse_counts(const std::string& text) {
  std::vector<int> counts;
  std::string token;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ',') {
      token.push_back(text[i]);
      continue;
    }
    counts.push_back(std::stoi(token));
    token.clear();
  }
  return counts;
}

/// Deadline-bounded plan query against a running plan_serve daemon: connect,
/// send one request, poll for the response, extract its counts= token.
/// Throws on timeout or a malformed answer -- the supervisor treats a
/// throwing oracle as "consult failed, fall back to the local planner".
std::vector<int> query_plan_daemon(const std::string& socket_path,
                                   double timeout_ms, int num_gpus) {
  using clock_t_ = std::chrono::steady_clock;
  const clock_t_::time_point deadline =
      clock_t_::now() + std::chrono::duration_cast<clock_t_::duration>(
                            std::chrono::duration<double, std::milli>(
                                timeout_ms));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("could not connect to " + socket_path);
  }
  const std::string request = "plan id=chaos model=gpt2-345m gpus=" +
                              std::to_string(num_gpus) + " gbs=64\n";
  std::size_t done = 0;
  while (done < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + done, request.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("write to daemon failed");
    }
    done += static_cast<std::size_t>(n);
  }
  std::string response;
  char c;
  while (true) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - clock_t_::now());
    if (remaining.count() <= 0) {
      ::close(fd);
      throw std::runtime_error("plan daemon did not answer within " +
                               std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0 && errno != EINTR) {
      ::close(fd);
      throw std::runtime_error("poll on daemon connection failed");
    }
    if (ready <= 0) continue;
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("read from daemon failed");
    }
    if (n == 0) {
      ::close(fd);
      throw std::runtime_error("daemon closed the connection");
    }
    if (c == '\n') break;
    response.push_back(c);
  }
  ::close(fd);
  const std::size_t at = response.find("counts=");
  if (response.rfind("ok ", 0) != 0 || at == std::string::npos) {
    throw std::runtime_error("daemon answered '" + response + "'");
  }
  const std::size_t end = response.find(' ', at);
  return parse_counts(response.substr(
      at + 7, end == std::string::npos ? std::string::npos : end - at - 7));
}

int do_degrade(const util::Cli& cli, const std::string& dir) {
  const int steps = cli.checked_int("steps", 6, 2, 1 << 20);

  supervisor::ChaosScript script;
  supervisor::ChaosEvent ev;
  ev.step = cli.checked_int("at", 3, 1, steps - 1);
  ev.kind = supervisor::ChaosKind::Crash;
  ev.device = cli.checked_int("device", 2, 0, 2);
  ev.op_index = 1;
  script.events.push_back(ev);

  supervisor::SupervisorOptions o = base_supervisor(cli, dir, steps);
  // Checkpoint every step so the crash always has something to restore.
  o.session.ckpt_interval = cli.checked_int("interval", 1, 1, 1 << 20);
  o.chaos = &script;
  o.mode = supervisor::RecoveryMode::Degrade;

  if (cli.has("oracle")) {
    // Explicit partition override: what an external planner would answer.
    const std::vector<int> counts = parse_counts(cli.get("oracle", ""));
    o.plan_oracle = [counts](int) { return counts; };
  } else if (cli.has("plan-socket")) {
    const std::string socket_path = cli.get("plan-socket", "");
    const double timeout_ms =
        cli.checked_double("timeout-ms", 2000.0, 1.0, 3600000.0);
    o.plan_oracle = [socket_path, timeout_ms](int num_gpus) {
      return query_plan_daemon(socket_path, timeout_ms, num_gpus);
    };
  }

  std::printf("degrade: device %d dies at step %d; restoring onto 2 "
              "survivors\n", ev.device, ev.step + 1);
  supervisor::Supervisor sup(o);
  const supervisor::SupervisorReport report = sup.run();
  print_report(report);
  if (!report.completed) {
    std::fprintf(stderr, "error: run aborted: %s\n",
                 report.abort_reason.c_str());
    return 1;
  }
  std::string counts;
  for (int c : report.final_counts) {
    if (!counts.empty()) counts += ' ';
    counts += std::to_string(c);
  }
  std::printf("finished on %zu device(s) (partition [%s])\n",
              report.final_counts.size(), counts.c_str());
  if (report.final_counts.size() != 2) {
    std::fprintf(stderr, "error: expected a 2-stage degraded partition\n");
    return 1;
  }
  const Reference ref = reference_run(cli, steps);
  const double diff = max_param_diff(sup.session().capture(), ref.state);
  std::printf("max param diff vs unfaulted 3-device run: %.3g\n", diff);
  if (diff > 1e-4) {
    std::fprintf(stderr, "error: degraded recovery diverged (%.3g > 1e-4)\n",
                 diff);
    return 1;
  }
  std::printf("degraded run matches the unfaulted run within 1e-4\n");
  return 0;
}

int do_corrupt(const util::Cli& cli, const std::string& dir) {
  const int steps = cli.checked_int("steps", 24, 1, 1 << 20);
  const int incidents = cli.checked_int("incidents", 8, 0, 1 << 20);
  const auto seed =
      static_cast<std::uint64_t>(cli.checked_int("seed", 7, 0, 1 << 30));
  const int norm_window = cli.checked_int("norm-window", 0, 0, 1 << 20);

  supervisor::ChaosScriptOptions copts;
  copts.steps = steps;
  copts.devices = 3;
  copts.ops_per_device = 12;
  copts.incidents = incidents;
  copts.classes = {supervisor::ChaosKind::CorruptActivation,
                   supervisor::ChaosKind::CorruptGradient,
                   supervisor::ChaosKind::CorruptWeight,
                   supervisor::ChaosKind::CorruptOptimizer};
  const supervisor::ChaosScript script =
      supervisor::ChaosScript::sample(copts, seed);

  supervisor::SupervisorOptions o = base_supervisor(cli, dir, steps);
  // Checkpoint every step so a state flip always has a verified-clean
  // checkpoint at most one step old to restore from.
  o.session.ckpt_interval = cli.checked_int("interval", 1, 1, 1 << 20);
  // The full guard stack: handoff CRCs catch in-flight flips, the weight
  // sentinel catches state flips, the non-finite scan backstops both. The
  // norm guard stays opt-in (--norm-window): a flipped exponent usually
  // also trips it, which would double-count detections in the 1:1 ledger.
  o.session.guard.handoff_crc = true;
  o.session.guard.nonfinite_checks = true;
  o.session.guard.weight_interval = 1;
  o.session.guard.norm_window = norm_window;
  o.chaos = &script;
  o.restart_budget =
      cli.checked_int("budget", 2 * incidents + 6, 1, 1 << 20);
  // No hangs are scripted here and every detection is a CRC/sentinel check,
  // not a silence deadline -- so give the watchdog a long leash to keep
  // slow sanitizer builds from false-firing mid-detection.
  o.watchdog.grace_ms = cli.checked_double("grace-ms", 10000.0, 50.0, 1e6);

  std::printf("corrupt: %d step(s), %zu scripted bit flip(s), seed %llu\n",
              steps, script.events.size(),
              static_cast<unsigned long long>(seed));
  supervisor::Supervisor sup(o);
  const supervisor::SupervisorReport report = sup.run();
  print_report(report);
  if (!report.completed) {
    std::fprintf(stderr, "error: corruption soak aborted at step %d: %s\n",
                 report.steps_done, report.abort_reason.c_str());
    return 1;
  }
  const auto caught = report.of_class(supervisor::IncidentClass::Corruption);
  if (caught.size() != script.events.size()) {
    std::fprintf(stderr,
                 "error: %zu bit flip(s) injected but only %zu incident(s) "
                 "classified corruption (an escape or a double-count)\n",
                 script.events.size(), caught.size());
    return 1;
  }
  std::printf("all %zu injected corruption(s) detected and classified "
              "Corruption\n", caught.size());
  const Reference ref = reference_run(cli, steps);
  return check_bit_identical(sup, report, ref);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s soak|hang|degrade|corrupt --dir PATH [flags]\n",
                 argv[0]);
    return 2;
  }
  const std::string verb = cli.positional()[0];
  try {
    const std::string dir = cli.get("dir", "");
    if (dir.empty()) {
      throw std::invalid_argument(verb + " needs --dir PATH");
    }
    // Each run owns its checkpoint directory: stale checkpoints from a past
    // soak would otherwise change what a restore finds.
    std::filesystem::remove_all(dir);
    if (verb == "soak") return do_soak(cli, dir);
    if (verb == "hang") return do_hang(cli, dir);
    if (verb == "degrade") return do_degrade(cli, dir);
    if (verb == "corrupt") return do_corrupt(cli, dir);
    throw std::invalid_argument("unknown verb '" + verb + "'");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
