// Fault lab: inject failures into both execution substrates and watch the
// system degrade gracefully (DESIGN.md §6).
//
//   fault_lab sim       [flags]  crash/straggle the discrete-event executor
//   fault_lab robust    [flags]  planner re-ranking under straggler noise
//   fault_lab transient [flags]  in-place retry of a flaky op, grads checked
//   fault_lab crash     [flags]  device loss -> replan on N-1 -> grads checked
//   fault_lab kill      [flags]  kill a stage mid-iteration; assert the
//                                runtime surfaces StageFailure (no hang)
//   fault_lab ckpt      [flags]  checkpointed training; --kill-at J raises
//                                SIGKILL during the J-th checkpoint commit,
//                                --resume restarts from the newest valid
//                                checkpoint and verifies the resumed loss
//                                trajectory matches an uninterrupted run
//
// Common flags: --model <zoo-name> (sim/robust), --gpus N, --mbs N, --gbs N,
// --threads N. Fault knobs: --seed N, --trials N, --quantile Q,
// --straggler-prob P, --slowdown X, --spike-prob P, --outage-prob P,
// --crash-device D, --crash-at MS (sim), --after-ops K (runtime),
// --failures N (transient count). Ckpt knobs: --dir PATH, --iters N,
// --interval K, --kill-at J, --resume, --gpus N (elastic resume).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/storage.h"
#include "core/autopipe.h"
#include "core/planner.h"
#include "core/replan.h"
#include "core/resume.h"
#include "faults/fault_plan.h"
#include "faults/robustness.h"
#include "runtime/train_session.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/recovery.h"
#include "runtime/stage_failure.h"
#include "sim/executor.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace autopipe;

faults::FaultDistribution dist_from(const util::Cli& cli) {
  faults::FaultDistribution dist;
  dist.straggler_prob = cli.checked_double("straggler-prob", 0.3, 0.0, 1.0);
  dist.slowdown_max = cli.checked_double("slowdown", 2.0, 1.0, 1e6);
  dist.spike_prob = cli.checked_double("spike-prob", 0.1, 0.0, 1.0);
  dist.outage_prob = cli.checked_double("outage-prob", 0.05, 0.0, 1.0);
  return dist;
}

/// The CPU-scale transformer the runtime verbs train: 3 layers -> 8 blocks,
/// enough for a 3-stage pipeline with headroom to degrade to 2.
model::TinySpec tiny_spec() {
  model::TinySpec s;
  s.layers = 3;
  s.hidden = 16;
  s.heads = 2;
  s.vocab = 32;
  s.seq = 4;
  return s;
}

/// The analytic ModelConfig describing the same block array as tiny_spec(),
/// i.e. what the planner re-partitions when a device is lost.
costmodel::ModelConfig tiny_config() {
  const model::TinySpec t = tiny_spec();
  costmodel::ModelSpec spec;
  spec.name = "tiny";
  spec.num_layers = t.layers;
  spec.hidden = t.hidden;
  spec.heads = t.heads;
  spec.vocab = t.vocab;
  spec.default_seq = t.seq;
  spec.causal = t.causal;
  return costmodel::build_model_config(spec, {4, 0, true});
}

int do_sim(const util::Cli& cli) {
  const std::string model = cli.get("model", "gpt2-345m");
  const int gpus = cli.checked_int("gpus", 4, 1, 1 << 20);
  const int mbs = cli.checked_int("mbs", 32, 1, 1 << 20);
  const long gbs = cli.checked_int("gbs", 512, 1, 1 << 30);
  const int threads = cli.checked_int("threads", 1, 0, 4096);
  const auto seed = static_cast<std::uint64_t>(cli.checked_int("seed", 7, 0,
                                                               1 << 30));

  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name(model), {mbs, 0, true});
  const auto planned = core::auto_plan(cfg, {gpus, gbs, 0, true, threads});
  const core::Schedule& schedule = planned.schedule;
  const int devices = schedule.num_stages;
  const sim::ExecResult nominal = sim::execute(schedule);
  std::printf("%s on %d GPUs: %d stage(s), fault-free iteration %.2f ms\n",
              cfg.spec.name.c_str(), gpus, devices, nominal.iteration_ms);

  // One sampled scenario, replayed in full detail.
  faults::FaultPlan plan = faults::sample_fault_plan(
      dist_from(cli), devices, devices - 1, nominal.iteration_ms, seed);
  if (cli.has("crash-at")) {
    faults::DeviceCrash crash;
    crash.device = cli.checked_int("crash-device", devices / 2, 0, devices - 1);
    crash.at_ms = cli.checked_double("crash-at", nominal.iteration_ms / 2,
                                     0.0, 1e9);
    plan.crashes.push_back(crash);
  }
  sim::ExecOptions exec;
  exec.faults = &plan;
  const sim::ExecResult faulted = sim::execute(schedule, exec);
  std::printf("seed %llu scenario: %zu straggler(s), %zu spike(s), "
              "%zu outage(s), %zu crash(es)\n",
              static_cast<unsigned long long>(seed), plan.stragglers.size(),
              plan.spikes.size(), plan.outages.size(), plan.crashes.size());
  if (faulted.failure.crashed) {
    std::printf("  device %d crashed at %.2f ms: %d op(s) completed, %d "
                "lost, iteration cut at %.2f ms\n",
                faulted.failure.device, faulted.failure.at_ms,
                faulted.failure.completed_ops, faulted.failure.lost_ops,
                faulted.iteration_ms);
  } else {
    std::printf("  iteration %.2f ms (+%.1f%% vs fault-free), %d link "
                "retry(ies)\n",
                faulted.iteration_ms,
                100.0 * (faulted.iteration_ms / nominal.iteration_ms - 1.0),
                faulted.link_retries);
  }

  // Monte-Carlo the straggler distribution over the same schedule.
  faults::RobustnessOptions rob;
  rob.trials = cli.checked_int("trials", 200, 1, 1 << 20);
  rob.seed = seed;
  rob.quantile = cli.checked_double("quantile", 95.0, 0.0, 100.0);
  rob.dist = dist_from(cli);
  const auto report = faults::evaluate_robustness(schedule, {}, rob);
  util::Table t({"trials", "nominal", "mean", "p50", "p95", "p99", "worst"});
  t.add_row({std::to_string(report.trials),
             util::Table::fmt(report.nominal_ms, 2),
             util::Table::fmt(report.mean_ms, 2),
             util::Table::fmt(report.p50_ms, 2),
             util::Table::fmt(report.p95_ms, 2),
             util::Table::fmt(report.p99_ms, 2),
             util::Table::fmt(report.worst_ms, 2)});
  std::printf("%s", t.to_ascii().c_str());
  return 0;
}

int do_robust(const util::Cli& cli) {
  const std::string model = cli.get("model", "gpt2-345m");
  const int stages = cli.checked_int("gpus", 4, 2, 1 << 10);
  const int mbs = cli.checked_int("mbs", 32, 1, 1 << 20);
  const int micro = cli.checked_int(
      "micro-batches", 16, stages, 1 << 20);
  const int threads = cli.checked_int("threads", 1, 0, 4096);

  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name(model), {mbs, 0, true});
  core::PlannerOptions nominal_opts;
  nominal_opts.threads = threads;
  const auto nominal = core::plan(cfg, stages, micro, nominal_opts);

  core::PlannerOptions robust_opts = nominal_opts;
  robust_opts.robustness.trials = cli.checked_int("trials", 200, 1, 1 << 20);
  robust_opts.robustness.seed =
      static_cast<std::uint64_t>(cli.checked_int("seed", 7, 0, 1 << 30));
  robust_opts.robustness.quantile =
      cli.checked_double("quantile", 95.0, 0.0, 100.0);
  robust_opts.robustness.candidates = cli.checked_int("candidates", 4, 1, 64);
  robust_opts.robustness.dist = dist_from(cli);
  const auto robust = core::plan(cfg, stages, micro, robust_opts);

  std::printf("nominal planner: %s\n",
              core::describe(cfg, nominal.partition).c_str());
  std::printf("robust  planner: %s\n",
              core::describe(cfg, robust.partition).c_str());
  std::printf("robust winner under p%.0f ranking: nominal %.2f ms, p50 %.2f, "
              "p95 %.2f, p99 %.2f (over %d trials)\n",
              robust_opts.robustness.quantile, robust.robustness.nominal_ms,
              robust.robustness.p50_ms, robust.robustness.p95_ms,
              robust.robustness.p99_ms, robust.robustness.trials);
  if (robust.partition == nominal.partition) {
    std::printf("same scheme wins with and without noise -- the nominal "
                "optimum is already robust here\n");
  }
  return 0;
}

/// Shared setup for the runtime verbs: twin tiny models, one mini-batch cut
/// into micro-batches, and the single-process reference gradients.
struct RuntimeLab {
  model::TinySpec spec = tiny_spec();
  model::TransformerModel ref{spec};
  model::TransformerModel piped{spec};
  std::vector<model::Batch> micro;
  double scale = 0;
  double ref_loss = 0;

  RuntimeLab() {
    model::SyntheticCorpus corpus(spec.vocab);
    const int B = 4, m = 6;
    const auto batch = corpus.next_batch(B * m, spec.seq);
    micro = model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
    scale = 1.0 / (B * m * spec.seq);
    ref.zero_grads();
    ref_loss = ref.reference_step(batch.ids, batch.targets, scale);
    piped.zero_grads();
  }

  int check_grads(double loss) {
    const double diff = ref.max_grad_diff(piped);
    std::printf("loss %.6f (reference %.6f), max grad diff vs single-process "
                "reference %.3g\n",
                loss, ref_loss, diff);
    if (diff > 1e-4) {
      std::fprintf(stderr, "error: gradients diverged from the reference\n");
      return 1;
    }
    std::printf("gradients match the single-process reference\n");
    return 0;
  }
};

int do_transient(const util::Cli& cli) {
  RuntimeLab lab;
  faults::FaultPlan plan;
  faults::TransientOpFault fault;
  fault.device = cli.checked_int("crash-device", 1, 0, 2);
  fault.op_index = 2;
  fault.failures = cli.checked_int("failures", 2, 1, 100);
  plan.transients.push_back(fault);

  runtime::PipelineRuntime rt(lab.piped, {2, 3, 3});
  const auto schedule = rt.make_schedule(
      costmodel::ScheduleKind::OneFOneB,
      static_cast<int>(lab.micro.size()));
  runtime::RunOptions run;
  run.faults = &plan;
  const auto result = rt.run_iteration(schedule, lab.micro, lab.scale, run);
  std::printf("transient fault on device %d absorbed by %d in-place "
              "retry(ies)\n",
              fault.device, result.transient_retries);
  return lab.check_grads(result.loss);
}

int do_crash(const util::Cli& cli) {
  RuntimeLab lab;
  faults::FaultPlan plan;
  faults::DeviceCrash crash;
  crash.device = cli.checked_int("crash-device", 1, 0, 2);
  crash.after_ops = cli.checked_int("after-ops", 3, 0, 1 << 20);
  plan.crashes.push_back(crash);

  runtime::RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.plan = {3, 24, 0, false, 1};
  const auto report = runtime::run_iteration_with_recovery(
      lab.piped, tiny_config(), {2, 3, 3}, lab.micro, lab.scale, rec);

  for (const auto& a : report.attempts) {
    if (a.ok) {
      std::printf("attempt %d on %d device(s): ok\n", a.attempt, a.devices);
    } else {
      std::printf("attempt %d on %d device(s): %s on device %d -> %s\n",
                  a.attempt, a.devices, runtime::to_string(a.kind),
                  a.failed_device,
                  a.kind == runtime::FailureKind::Transient ? "retry"
                                                            : "replan");
    }
  }
  std::string counts;
  for (int c : report.final_counts) {
    if (!counts.empty()) counts += " ";
    counts += std::to_string(c);
  }
  std::printf("recovered on %d device(s) (partition [%s]) in %.1f ms, "
              "%.1f ms of it re-planning\n",
              report.devices_used, counts.c_str(), report.recovery_ms,
              report.replan_ms);
  return lab.check_grads(report.result.loss);
}

int do_kill(const util::Cli& cli) {
  // The CI smoke: kill a stage mid-iteration with *no* recovery layer and
  // require a prompt, typed StageFailure -- never a hang, never a silent
  // wrong answer.
  RuntimeLab lab;
  faults::FaultPlan plan;
  faults::DeviceCrash crash;
  crash.device = cli.checked_int("crash-device", 1, 0, 2);
  crash.after_ops = cli.checked_int("after-ops", 3, 0, 1 << 20);
  plan.crashes.push_back(crash);

  runtime::PipelineRuntime rt(lab.piped, {2, 3, 3});
  const auto schedule = rt.make_schedule(
      costmodel::ScheduleKind::OneFOneB,
      static_cast<int>(lab.micro.size()));
  runtime::RunOptions run;
  run.faults = &plan;
  run.recv_deadline_ms = 2000;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    rt.run_iteration(schedule, lab.micro, lab.scale, run);
  } catch (const runtime::StageFailure& e) {
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("clean StageFailure propagation: kind %s, device %d, "
                "surfaced in %.1f ms (%s)\n",
                runtime::to_string(e.kind()), e.device(), ms, e.what());
    return 0;
  }
  std::fprintf(stderr, "error: crash did not surface as StageFailure\n");
  return 1;
}

// ------------------------------------------------------------------- ckpt

/// PosixStorage wrapper that raises SIGKILL the moment the J-th MANIFEST
/// commit-rename is requested: records are on disk, the manifest is not,
/// so the process dies genuinely mid-checkpoint (the crash-consistency
/// protocol's worst moment). The CI smoke runs this, then `--resume`.
class KillAtManifestStorage : public ckpt::Storage {
 public:
  KillAtManifestStorage(ckpt::Storage& inner, int kill_at)
      : inner_(inner), kill_at_(kill_at) {}

  void create_dirs(const std::string& path) override {
    inner_.create_dirs(path);
  }
  void write_file(const std::string& path, std::string_view bytes) override {
    inner_.write_file(path, bytes);
  }
  void rename_file(const std::string& from, const std::string& to) override {
    const bool manifest = to.size() >= 8 &&
                          to.compare(to.size() - 8, 8, "MANIFEST") == 0;
    if (manifest && ++manifest_renames_ == kill_at_) {
      std::fprintf(stderr, "killing process during checkpoint commit #%d\n",
                   kill_at_);
      std::fflush(nullptr);
      raise(SIGKILL);
    }
    inner_.rename_file(from, to);
  }
  std::string read_file(const std::string& path) override {
    return inner_.read_file(path);
  }
  bool exists(const std::string& path) override { return inner_.exists(path); }
  std::vector<std::string> list_dir(const std::string& path) override {
    return inner_.list_dir(path);
  }
  void remove_file(const std::string& path) override {
    inner_.remove_file(path);
  }
  void remove_dir(const std::string& path) override {
    inner_.remove_dir(path);
  }

 private:
  ckpt::Storage& inner_;
  int kill_at_ = 0;
  int manifest_renames_ = 0;
};

/// Largest |a - b| across two captured states' parameters (must be
/// structurally identical; the elastic path compares with a tolerance
/// because a different partition accumulates gradients in another order).
double max_param_diff(const ckpt::TrainState& a, const ckpt::TrainState& b) {
  double worst = 0;
  if (a.blocks.size() != b.blocks.size()) return 1e30;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].params.size() != b.blocks[i].params.size()) return 1e30;
    for (std::size_t p = 0; p < a.blocks[i].params.size(); ++p) {
      const auto& pa = a.blocks[i].params[p];
      const auto& pb = b.blocks[i].params[p];
      if (pa.value.size() != pb.value.size()) return 1e30;
      for (std::size_t k = 0; k < pa.value.size(); ++k) {
        worst = std::max(worst, std::fabs(static_cast<double>(pa.value[k]) -
                                          static_cast<double>(pb.value[k])));
      }
    }
  }
  return worst;
}

int do_ckpt(const util::Cli& cli) {
  const std::string dir = cli.get("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "error: ckpt needs --dir PATH\n");
    return 2;
  }
  const int iters = cli.checked_int("iters", 8, 1, 1 << 20);
  const int interval = cli.checked_int("interval", 2, 1, 1 << 20);

  runtime::TrainSessionOptions opts;
  opts.spec = tiny_spec();
  opts.counts = {2, 3, 3};
  opts.ckpt_dir = dir;
  opts.ckpt_interval = interval;

  if (cli.has("resume")) {
    // Restart from the newest valid checkpoint (the kill above may have
    // left an uncommitted step directory behind -- the reader must skip it),
    // finish the run, then verify against an uninterrupted golden run.
    ckpt::PosixStorage storage;
    core::ResumeOptions ropt;
    ropt.num_gpus = cli.checked_int("gpus", 0, 0, 8);
    const auto resumed =
        core::resume_from_checkpoint(tiny_config(), storage, dir, ropt);
    for (const auto& c : resumed.candidates) {
      std::printf("candidate step %d: %s\n", c.step,
                  c.valid ? "valid" : c.reason.c_str());
    }
    std::string counts;
    for (int c : resumed.counts) {
      if (!counts.empty()) counts += " ";
      counts += std::to_string(c);
    }
    std::printf("resuming at step %d on %zu device(s) (partition [%s])%s\n",
                resumed.state.step, resumed.counts.size(), counts.c_str(),
                resumed.resharded ? " -- resharded" : "");

    runtime::TrainSessionOptions sopts = opts;
    sopts.counts = resumed.counts;
    sopts.ckpt_dir.clear();  // the verification leg does not checkpoint
    sopts.ckpt_interval = 0;
    runtime::TrainSession session(sopts, resumed.state);
    const int resume_step = session.iteration();
    while (session.iteration() < iters) session.step();

    runtime::TrainSessionOptions gopts = opts;
    gopts.ckpt_dir.clear();
    gopts.ckpt_interval = 0;
    runtime::TrainSession golden(gopts);
    for (int i = 0; i < iters; ++i) golden.step();

    const auto got = session.capture();
    const auto want = golden.capture();
    if (!resumed.resharded) {
      // Same partition: the continuation must be bit-identical.
      for (int i = resume_step; i < iters; ++i) {
        const double a = session.losses()[static_cast<std::size_t>(
            i - resume_step)];
        const double b = golden.losses()[static_cast<std::size_t>(i)];
        if (a != b) {
          std::fprintf(stderr,
                       "error: loss at step %d diverged (%.17g vs %.17g)\n",
                       i + 1, a, b);
          return 1;
        }
        std::printf("step %d loss %.6f == uninterrupted %.6f\n", i + 1, a, b);
      }
      if (got.blocks != want.blocks || got.data_rng != want.data_rng ||
          got.adam_t != want.adam_t) {
        std::fprintf(stderr, "error: final state diverged from the "
                             "uninterrupted run\n");
        return 1;
      }
    } else {
      // Elastic: same math, different accumulation order.
      const double diff = max_param_diff(got, want);
      std::printf("elastic resume: max param diff vs uninterrupted run "
                  "%.3g\n", diff);
      if (diff > 1e-4) {
        std::fprintf(stderr, "error: resharded resume diverged\n");
        return 1;
      }
    }
    std::printf("resumed trajectory matches uninterrupted run\n");
    return 0;
  }

  ckpt::PosixStorage posix;
  const int kill_at = cli.checked_int("kill-at", 0, 0, 1 << 20);
  KillAtManifestStorage killer(posix, kill_at);
  if (kill_at > 0) opts.storage = &killer;

  runtime::TrainSession session(opts);
  for (int i = 0; i < iters; ++i) session.step();
  std::printf("ran %d iteration(s), wrote %d checkpoint(s) under %s "
              "(%d failure(s)), final loss %.6f\n",
              session.iteration(), session.checkpoints_written(), dir.c_str(),
              session.checkpoint_failures(), session.losses().back());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s sim|robust|transient|crash|kill|ckpt "
                 "[--model NAME] [--gpus N] [--trials N] [--seed N] "
                 "[--straggler-prob P] [--crash-device D] [--crash-at MS] "
                 "[--after-ops K] [--dir PATH] [--iters N] [--interval K] "
                 "[--kill-at J] [--resume]\n",
                 cli.program().c_str());
    return 2;
  }
  const std::string verb = cli.positional()[0];
  try {
    if (verb == "sim") return do_sim(cli);
    if (verb == "robust") return do_robust(cli);
    if (verb == "transient") return do_transient(cli);
    if (verb == "crash") return do_crash(cli);
    if (verb == "kill") return do_kill(cli);
    if (verb == "ckpt") return do_ckpt(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "unknown verb '%s' (expected "
               "sim|robust|transient|crash|kill|ckpt)\n",
               verb.c_str());
  return 2;
}
