// The master-stage story of Fig. 7, reproduced on the simulator.
//
//   ./master_stage_demo [--micro-batches 8]
//
// Three pipelines with the SAME total load but different distributions:
//   (a) the master stage sits late (stage 2 heaviest);
//   (b) swapping the load forward moves the master to stage 1 and shortens
//       the iteration -- but leaves a bubble in the master's Cooldown;
//   (c) redistributing the post-master load per Eq. (1) removes that
//       bubble and shortens the iteration again.
// For each variant we print the simulated iteration time, the master
// stage, and the executed timeline, then show AutoPipe's cooldown_adjust
// performing step (c) automatically.
#include <cstdio>

#include "core/planner.h"
#include "core/simulator.h"
#include "sim/executor.h"
#include "trace/timeline.h"
#include "util/cli.h"

namespace {

using namespace autopipe;

void show(const char* title, const std::vector<core::StageCost>& stages,
          int m) {
  const auto sim = core::simulate_pipeline(stages, m, 0.05);
  const auto exec = sim::execute(core::build_1f1b(stages, m, 0.05));
  std::printf("%s\n  loads:", title);
  for (const auto& s : stages) std::printf(" %.0f+%.0f", s.fwd_ms, s.bwd_ms);
  std::printf("  ->  iteration %.1f ms, master stage %d\n",
              sim.iteration_ms, sim.master_stage);
  std::printf("%s\n", trace::render_timeline(exec, {90, false}).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int m = cli.get_int("micro-batches", 8);

  // Same total load (f 1+1+2+1 = 5, b 3+3+6+3 = 15) in all three variants.
  show("(a) heavy load on stage 2 -- a late master stage",
       {{1, 3}, {1, 3}, {2, 6}, {1, 3}}, m);
  show("(b) load swapped forward -- master moves to stage 1, iteration "
       "shrinks, but its Cooldown now stalls",
       {{1, 3}, {2, 6}, {1, 3}, {1, 3}}, m);
  show("(c) post-master load redistributed (Eq. 1) -- the Cooldown bubble "
       "vanishes",
       {{1, 3}, {2, 6}, {1, 4}, {1, 2}}, m);

  // AutoPipe's planner performs the (b) -> (c) adjustment automatically.
  std::printf("cooldown_adjust on a synthetic model reproducing (b):\n");
  costmodel::ModelConfig cfg;
  cfg.spec = costmodel::gpt2_345m();
  cfg.comm_ms = 0.05;
  // Blocks with f = b (no recompute), so Eq. (1) genuinely binds: the
  // stage after the master carries more than one backward's worth of work.
  for (int i = 0; i < 10; ++i) {
    costmodel::Block b;
    b.name = "blk" + std::to_string(i);
    b.kind = costmodel::BlockKind::FFN;
    b.fwd_ms = 1.0;
    b.bwd_ms = 1.0;
    b.layer_units = 0.5;
    cfg.blocks.push_back(b);
  }
  core::Partition skew{{2, 4, 3, 1}};  // master stage 1; stage 2 violates (1)
  const auto before = core::simulate_pipeline(cfg, skew, m);
  const auto adjusted =
      core::cooldown_adjust(cfg, skew, before.master_stage, m);
  const auto after = core::simulate_pipeline(cfg, adjusted, m);
  std::printf("  before: counts [%d %d %d %d], iteration %.2f ms, master %d\n",
              skew.counts[0], skew.counts[1], skew.counts[2], skew.counts[3],
              before.iteration_ms, before.master_stage);
  std::printf("  after:  counts [%d %d %d %d], iteration %.2f ms, master "
              "%d\n",
              adjusted.counts[0], adjusted.counts[1], adjusted.counts[2],
              adjusted.counts[3], after.iteration_ms, after.master_stage);
  return 0;
}
