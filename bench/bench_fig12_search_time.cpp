// Fig. 12: planner search time across the model zoo.
//
// DAPPLE searches layer splits x device assignments x placements (largest
// space); Piper adds the data-parallel dimension to its layer-split DP;
// AutoPipe's master-stage heuristic searches orders of magnitude fewer
// schemes. The paper additionally notes DAPPLE's planner is Python (about
// two orders of magnitude of constant factor on top of what this C++
// reimplementation measures).
//
// Besides the classic serial table, the harness sweeps the planners'
// `threads` knob (powers of two up to --threads, default 8) and emits one
// JSON line per (planner, model, threads) with the search time, the
// memoization counters and the speedup over the same planner at threads=1.
// Every planner returns an identical plan at every thread count, so the
// sweep measures pure wall-clock scaling. AutoPipe's sweep times
// core::plan() at a forced 16-stage depth (the search the thread pool
// actually fans out); note that on a single-core host the >1-thread rows
// only show pool overhead -- the scaling needs real cores.
#include "common.h"

#include "planners/dapple.h"
#include "planners/piper.h"
#include "util/cli.h"

namespace {

using namespace autopipe;

/// min-of-k wall time plus the stats of the last run.
template <typename Run>
double best_of(int k, Run&& run) {
  double best = run();
  for (int i = 1; i < k; ++i) best = std::min(best, run());
  return best;
}

void emit_json(const std::string& planner, const std::string& model,
               int threads, double search_ms, double serial_ms,
               int evaluations = -1, int unique_simulations = -1,
               int cache_hits = -1) {
  std::printf("{\"bench\":\"fig12_search_time\",\"planner\":\"%s\","
              "\"model\":\"%s\",\"threads\":%d,\"search_ms\":%.3f",
              planner.c_str(), model.c_str(), threads, search_ms);
  if (evaluations >= 0) {
    std::printf(",\"evaluations\":%d,\"unique_simulations\":%d,"
                "\"cache_hits\":%d",
                evaluations, unique_simulations, cache_hits);
  }
  std::printf(",\"speedup_vs_1\":%.2f}\n",
              serial_ms / std::max(1e-6, search_ms));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autopipe::bench;
  emit_metadata("fig12_search_time");
  const util::Cli cli(argc, argv);
  const int gpus = 16;
  const int max_threads = std::max(1, cli.get_int("threads", 8));
  const std::vector<std::string> models{"gpt2-345m", "gpt2-762m", "gpt2-1.3b",
                                        "bert-large"};

  std::printf("Fig. 12 -- planner search time (ms), %d GPUs, micro-batch 8\n",
              gpus);
  std::printf("(log-scale in the paper; expect DAPPLE >= Piper >> AutoPipe)\n\n");

  util::Table t({"Model", "DAPPLE", "Piper", "AutoPipe",
                 "Piper / AutoPipe"});
  for (const std::string& model : models) {
    const auto cfg = config_for(model, 8);
    const auto d = planners::dapple_plan(cfg, gpus, {8, 4, 512});
    const auto p = planners::piper_plan(cfg, gpus, {8, 512});
    const auto a = core::auto_plan(cfg, {gpus, 512, 0, true});
    t.add_row({model, util::Table::fmt(d.planning_ms, 1),
               util::Table::fmt(p.planning_ms, 1),
               util::Table::fmt(a.plan.planning_ms, 1),
               util::Table::fmt(p.planning_ms /
                                    std::max(0.01, a.plan.planning_ms),
                                1) +
                   "x"});
  }
  show_table(t, "fig12_search_time");

  // Thread sweep, one JSON line per (planner, model, threads).
  std::vector<int> sweep{1};
  for (int n = 2; n <= max_threads; n *= 2) sweep.push_back(n);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);
  std::printf("thread sweep (min of 3 runs; search_ms only, plans are "
              "identical across thread counts):\n");
  for (const std::string& model : models) {
    const auto cfg = config_for(model, 8);
    const int m = 512 / 8;
    double serial_ap = 0, serial_piper = 0, serial_dapple = 0;
    for (int threads : sweep) {
      // AutoPipe: the 16-stage planner search itself (the acceptance
      // criterion's GPT-2 1.3B @ 16 stages row comes from here).
      core::PlannerOptions popts;
      popts.threads = threads;
      core::PlannerResult ap;
      const double ap_ms =
          best_of(3, [&] { return (ap = core::plan(cfg, gpus, m, popts))
                               .search_ms; });
      if (threads == 1) serial_ap = ap_ms;
      emit_json("autopipe", model, threads, ap_ms, serial_ap, ap.evaluations,
                ap.unique_simulations, ap.cache_hits);

      const double piper_ms = best_of(3, [&] {
        return planners::piper_plan(cfg, gpus, {8, 512, threads}).planning_ms;
      });
      if (threads == 1) serial_piper = piper_ms;
      emit_json("piper", model, threads, piper_ms, serial_piper);

      const double dapple_ms = best_of(3, [&] {
        return planners::dapple_plan(cfg, gpus, {8, 4, 512, threads})
            .planning_ms;
      });
      if (threads == 1) serial_dapple = dapple_ms;
      emit_json("dapple", model, threads, dapple_ms, serial_dapple);
    }
  }
  return 0;
}
