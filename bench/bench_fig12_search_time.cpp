// Fig. 12: planner search time across the model zoo.
//
// DAPPLE searches layer splits x device assignments x placements (largest
// space); Piper adds the data-parallel dimension to its layer-split DP;
// AutoPipe's master-stage heuristic searches orders of magnitude fewer
// schemes. The paper additionally notes DAPPLE's planner is Python (about
// two orders of magnitude of constant factor on top of what this C++
// reimplementation measures).
#include "common.h"

#include "planners/dapple.h"
#include "planners/piper.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  const int gpus = 16;
  std::printf("Fig. 12 -- planner search time (ms), %d GPUs, micro-batch 8\n",
              gpus);
  std::printf("(log-scale in the paper; expect DAPPLE >= Piper >> AutoPipe)\n\n");

  util::Table t({"Model", "DAPPLE", "Piper", "AutoPipe",
                 "Piper / AutoPipe"});
  for (const std::string model :
       {"gpt2-345m", "gpt2-762m", "gpt2-1.3b", "bert-large"}) {
    const auto cfg = config_for(model, 8);
    const auto d = planners::dapple_plan(cfg, gpus, {8, 4, 512});
    const auto p = planners::piper_plan(cfg, gpus, {8, 512});
    const auto a = core::auto_plan(cfg, {gpus, 512, 0, true});
    t.add_row({model, util::Table::fmt(d.planning_ms, 1),
               util::Table::fmt(p.planning_ms, 1),
               util::Table::fmt(a.plan.planning_ms, 1),
               util::Table::fmt(p.planning_ms /
                                    std::max(0.01, a.plan.planning_ms),
                                1) +
                   "x"});
  }
  show_table(t, "fig12_search_time");
  return 0;
}
