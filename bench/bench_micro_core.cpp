// google-benchmark microbenchmarks of the planning hot paths: these are
// what Fig. 12's search times are made of.
#include <benchmark/benchmark.h>

#include "common.h"
#include "core/autopipe.h"
#include "core/balanced_dp.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "core/simulator.h"
#include "core/slicer.h"
#include "sim/executor.h"

namespace {

using namespace autopipe;

// benchmark_main owns main(), so the provenance line is emitted from a
// static initializer -- it precedes google-benchmark's own header output.
[[maybe_unused]] const bool g_metadata_emitted = [] {
  bench::emit_metadata("micro_core");
  return true;
}();

const core::ModelConfig& gpt2_config() {
  static const core::ModelConfig cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  return cfg;
}

void BM_SimulatePipeline(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto& cfg = gpt2_config();
  const auto p = core::balanced_partition(cfg, depth);
  const auto costs = core::stage_costs(cfg, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::simulate_pipeline(costs, 2 * depth, cfg.comm_ms).iteration_ms);
  }
}
BENCHMARK(BM_SimulatePipeline)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_BalancedDp(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto loads = core::block_loads(gpt2_config());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::balanced_counts(loads, depth));
  }
}
BENCHMARK(BM_BalancedDp)->Arg(2)->Arg(8)->Arg(16);

void BM_PlannerEndToEnd(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto& cfg = gpt2_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::plan(cfg, depth, 2 * depth).sim.iteration_ms);
  }
}
BENCHMARK(BM_PlannerEndToEnd)->Arg(4)->Arg(8)->Arg(16);

void BM_Slicer(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto& cfg = gpt2_config();
  const auto costs =
      core::stage_costs(cfg, core::balanced_partition(cfg, depth));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::solve_slicing(costs, cfg.comm_ms, 2 * depth)
            .sliced_micro_batches);
  }
}
BENCHMARK(BM_Slicer)->Arg(4)->Arg(16);

void BM_EventExecutor(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto& cfg = gpt2_config();
  const auto costs =
      core::stage_costs(cfg, core::balanced_partition(cfg, depth));
  const auto schedule = core::build_1f1b(costs, 2 * depth, cfg.comm_ms);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::execute(schedule).iteration_ms);
  }
}
BENCHMARK(BM_EventExecutor)->Arg(4)->Arg(16);

void BM_AutoPlanFacade(benchmark::State& state) {
  const auto& cfg = gpt2_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::auto_plan(cfg, {8, 256, 0, true}).evaluation.iteration_ms);
  }
}
BENCHMARK(BM_AutoPlanFacade);

}  // namespace
