// Uniform vs topology-derived communication pricing across the model zoo.
//
// For each model the AutoPipe pipeline is planned twice at the same depth
// and micro-batch count: once with the profile's uniform scalar comm_ms,
// once with per-boundary costs derived from the paper cluster's links
// (PCIe inside a 4-GPU node, 100G InfiniBand across) and the model's
// activation size. Both plans are then simulated under the heterogeneous
// prices -- the costs the cluster actually charges -- so the delta is the
// iteration time the planner leaves on the table by assuming links are
// uniform. One JSON object per (model, depth) cell for downstream plotting.
#include "common.h"

#include "costmodel/analytic.h"
#include "costmodel/topology.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("comm_topology");
  const auto topo = costmodel::paper_cluster();
  std::printf("Comm topology -- uniform vs per-boundary pricing "
              "(paper cluster: %d GPUs/node)\n\n",
              topo.gpus_per_node);

  util::Table t({"model", "stages", "m", "uniform plan (ms)",
                 "topology plan (ms)", "delta (%)", "plan changed"});
  for (const char* model :
       {"gpt2-345m", "gpt2-762m", "gpt2-1.3b", "bert-large"}) {
    const auto cfg = config_for(model, 8);
    const auto comm = costmodel::CommModel::from_topology(
        topo, 0, costmodel::activation_bytes(cfg));
    for (int stages : {4, 5, 8}) {
      const int m = 2 * stages + stages / 2;

      core::PlannerOptions uniform_opts;
      const auto uniform = core::plan(cfg, stages, m, uniform_opts);
      core::PlannerOptions hetero_opts;
      hetero_opts.comm = comm;
      const auto hetero = core::plan(cfg, stages, m, hetero_opts);

      // Score both partitions under the prices the cluster charges.
      const double uniform_ms =
          core::simulate_pipeline(core::stage_costs(cfg, uniform.partition),
                                  m, comm)
              .iteration_ms;
      const double hetero_ms =
          core::simulate_pipeline(core::stage_costs(cfg, hetero.partition),
                                  m, comm)
              .iteration_ms;
      const bool changed = uniform.partition.counts != hetero.partition.counts;
      const double delta_pct = 100.0 * (uniform_ms - hetero_ms) / uniform_ms;

      t.add_row({model, std::to_string(stages), std::to_string(m),
                 util::Table::fmt(uniform_ms, 2),
                 util::Table::fmt(hetero_ms, 2),
                 util::Table::fmt(delta_pct, 3), changed ? "yes" : "no"});
      std::printf("{\"bench\":\"comm_topology\",\"model\":\"%s\","
                  "\"stages\":%d,\"micro_batches\":%d,"
                  "\"uniform_plan_ms\":%.6f,\"topology_plan_ms\":%.6f,"
                  "\"delta_pct\":%.4f,\"plan_changed\":%s}\n",
                  model, stages, m, uniform_ms, hetero_ms, delta_pct,
                  changed ? "true" : "false");
    }
  }
  std::printf("\n");
  show_table(t, "comm_topology");
  std::printf("note: the topology-aware plan can never simulate worse than "
              "the uniform plan under heterogeneous prices; 'no' rows mean "
              "the uniform partition was already optimal there.\n");
  return 0;
}
