// Table II + Fig. 11: simulator accuracy across seven hand-picked
// partition schemes of GPT-2 345M on a 4-stage pipeline.
//
// "Actual" is the discrete-event executor with the per-op launch-overhead
// profile; "simulated" is the paper-faithful analytic simulator. The trend
// must match and the gap must be stable (the paper's acceptance criterion
// for planning on simulated times).
#include "common.h"

#include "util/stats.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("fig11_simulator");
  const auto cfg = config_for("gpt2-345m", 4);
  const int m = 8;

  const std::vector<std::vector<double>> schemes{
      {5, 7, 6, 6},         {6, 6.5, 6.5, 5},  {6, 7, 6, 5},
      {6.5, 6.5, 6.5, 4.5}, {6.5, 6.5, 6, 5},  {7, 5.5, 6, 5.5},
      {7, 6.5, 5.5, 5}};

  std::printf("Table II -- pipeline planning schemes of GPT-2 345M "
              "(layers per stage)\n\n");
  util::Table t2({"Partition ID", "stage 0", "stage 1", "stage 2", "stage 3"});
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    t2.add_row({std::to_string(i + 1), util::Table::fmt(schemes[i][0], 1),
                util::Table::fmt(schemes[i][1], 1),
                util::Table::fmt(schemes[i][2], 1),
                util::Table::fmt(schemes[i][3], 1)});
  }
  show_table(t2, "table2_partitions");

  std::printf("Fig. 11 -- execution time per micro-batch (ms), simulator vs "
              "actual run\n\n");
  util::Table t({"Partition ID", "simulated", "actual", "gap", "gap %"});
  std::vector<double> gaps;
  auto opts = actual_run_options(cfg);
  opts.jitter_frac = 0.02;  // measurement noise of a real run
  opts.seed = 2022;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    const auto p = core::partition_from_layers(cfg, schemes[i]);
    const double simulated =
        core::simulate_pipeline(cfg, p, m).iteration_ms / m;
    const auto costs = core::stage_costs(cfg, p);
    const double actual =
        sim::execute(core::build_1f1b(costs, m, cfg.comm_ms), opts)
            .iteration_ms /
        m;
    gaps.push_back(actual - simulated);
    t.add_row({std::to_string(i + 1), util::Table::fmt(simulated, 2),
               util::Table::fmt(actual, 2),
               util::Table::fmt(actual - simulated, 2),
               util::Table::fmt(100.0 * (actual - simulated) / simulated, 1)});
  }
  show_table(t, "fig11_simulator_vs_actual");
  std::printf("gap stability: mean %.2f ms, stddev %.2f ms (stable gap => "
              "planning on simulated times is sound)\n",
              util::mean(gaps), util::stddev(gaps));
  return 0;
}
