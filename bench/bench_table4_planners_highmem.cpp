// Table IV: planner comparison with high memory demand.
//
// GPT-2 345M at micro-batch 32 and GPT-2 1.3B at micro-batch 16: neither
// fits a single GPU, so every planner must pipeline. Expected shape:
// AutoPipe fastest everywhere; DAPPLE close behind on 345M (its 2-stage
// split is imbalanced) but OOM on 1.3B (its memory model misses
// activations); Piper feasible everywhere but slower (deeper, imbalanced
// layer-granularity pipelines).
#include "common.h"

#include "planners/dapple.h"
#include "planners/piper.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("table4_planners_highmem");
  std::printf("Table IV -- planner comparison, high memory demand; "
              "time per iteration (ms)\n\n");

  struct ModelCase {
    const char* model;
    int mbs;
  };
  util::Table t({"Model", "Mbs", "# of GPUs", "Alg.", "Gbs=512", "Gbs=1024",
                 "Gbs=2048"});
  for (const auto& mc :
       {ModelCase{"gpt2-345m", 32}, ModelCase{"gpt2-1.3b", 16}}) {
    const auto cfg = config_for(mc.model, mc.mbs);
    for (int gpus : {4, 8}) {
      struct Row {
        const char* tag;
        core::ParallelPlan plan;
      };
      std::vector<Row> rows;
      rows.push_back({"D", planners::dapple_plan(cfg, gpus, {8, 4, 512})});
      rows.push_back({"P", planners::piper_plan(cfg, gpus, {8, 512})});
      rows.push_back({"A", core::auto_plan(cfg, {gpus, 512, 0, true}).plan});
      for (auto& row : rows) {
        std::vector<std::string> cells{mc.model, std::to_string(mc.mbs),
                                       std::to_string(gpus), row.tag};
        for (long gbs : {512L, 1024L, 2048L}) {
          const auto ev = core::evaluate_plan(cfg, row.plan, gbs);
          cells.push_back(ev.oom             ? "OOM"
                          : ev.runtime_error ? "-"
                                    : util::Table::fmt(ev.iteration_ms, 1));
        }
        t.add_row(cells);
      }
    }
  }
  show_table(t, "table4_highmem");

  // The paper's headline ratios for this table.
  const auto cfg345 = config_for("gpt2-345m", 32);
  const auto d = core::evaluate_plan(
      cfg345, planners::dapple_plan(cfg345, 8, {8, 4, 2048}), 2048);
  const auto p = core::evaluate_plan(
      cfg345, planners::piper_plan(cfg345, 8, {8, 2048}), 2048);
  const auto a = core::auto_plan(cfg345, {8, 2048, 0, true});
  std::printf("GPT-2 345M, 8 GPUs, Gbs 2048: AutoPipe vs DAPPLE %.2fx, vs "
              "Piper %.2fx (paper: 1.19x and 1.18x)\n",
              d.iteration_ms / a.evaluation.iteration_ms,
              p.iteration_ms / a.evaluation.iteration_ms);
  return 0;
}
