// Ablations of AutoPipe's design choices (DESIGN.md §12):
//   1. sub-layer vs layer granularity in the Planner (the Fig. 3 claim);
//   2. heuristic master-stage search vs Algorithm 1 alone;
//   3. the Slicer's contribution per pipeline depth.
#include "common.h"

#include "core/balanced_dp.h"
#include "planners/units.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("ablation_granularity");

  std::printf("Ablation 1 -- planner granularity (GPT-2 345M, micro-batch "
              "4, m = 2 x depth): iteration ms\n\n");
  {
    const auto cfg = config_for("gpt2-345m", 4);
    util::Table t({"stages", "layer granularity", "sub-layer granularity",
                   "gain"});
    for (int depth : {2, 4, 8, 12}) {
      const int m = 2 * depth;
      // Layer granularity: Algorithm-1 style DP over whole-layer units.
      const auto units = planners::layer_units(cfg);
      const std::vector<double> weights(depth, 1.0);
      const auto layer_counts =
          planners::weighted_balanced_split(units, weights);
      const auto layer_part =
          planners::partition_from_unit_counts(units, layer_counts);
      const double layer_ms =
          core::simulate_pipeline(cfg, layer_part, m).iteration_ms;
      // Sub-layer granularity: the full planner.
      const auto planned = core::plan(cfg, depth, m);
      t.add_row({std::to_string(depth), util::Table::fmt(layer_ms, 1),
                 util::Table::fmt(planned.sim.iteration_ms, 1),
                 util::Table::fmt(layer_ms / planned.sim.iteration_ms, 3) +
                     "x"});
    }
    std::printf("%s\n", t.to_ascii().c_str());
  }

  std::printf("Ablation 2 -- heuristic master-stage search vs Algorithm 1 "
              "alone:\n\n");
  {
    util::Table t({"model", "stages", "Algorithm 1 only", "full heuristic",
                   "gain", "evaluations"});
    for (const std::string model : {"gpt2-345m", "bert-large"}) {
      const auto cfg = config_for(model, 4);
      for (int depth : {4, 8}) {
        const int m = 2 * depth;
        const auto seed = core::balanced_partition(cfg, depth);
        const double seed_ms =
            core::simulate_pipeline(cfg, seed, m).iteration_ms;
        const auto planned = core::plan(cfg, depth, m);
        t.add_row({model, std::to_string(depth), util::Table::fmt(seed_ms, 1),
                   util::Table::fmt(planned.sim.iteration_ms, 1),
                   util::Table::fmt(seed_ms / planned.sim.iteration_ms, 3) +
                       "x",
                   std::to_string(planned.evaluations)});
      }
    }
    std::printf("%s\n", t.to_ascii().c_str());
  }

  std::printf("Ablation 3 -- Slicer contribution per depth (GPT-2 345M, "
              "planned partitions): iteration ms on the executor\n\n");
  {
    const auto cfg = config_for("gpt2-345m", 4);
    const auto opts = actual_run_options(cfg);
    util::Table t({"stages", "no slicing", "sliced", "sliced micro-batches",
                   "startup reduction"});
    for (int depth : {2, 4, 8, 12}) {
      const int m = 2 * depth;
      const auto planned = core::plan(cfg, depth, m);
      const auto costs = core::stage_costs(cfg, planned.partition);
      const auto plain =
          sim::execute(core::build_1f1b(costs, m, cfg.comm_ms), opts);
      const auto slicing = core::solve_slicing(costs, cfg.comm_ms, m);
      const auto sliced = sim::execute(
          core::build_sliced_1f1b(costs, m, cfg.comm_ms,
                                  slicing.sliced_micro_batches),
          opts);
      t.add_row({std::to_string(depth),
                 util::Table::fmt(plain.iteration_ms, 1),
                 util::Table::fmt(sliced.iteration_ms, 1),
                 std::to_string(slicing.sliced_micro_batches),
                 util::Table::fmt(100.0 * (plain.startup_ms -
                                           sliced.startup_ms) /
                                      plain.startup_ms,
                                  1) +
                     "%"});
    }
    std::printf("%s\n", t.to_ascii().c_str());
  }

  std::printf("Ablation 4 -- sensitivity to the communication/compute "
              "ratio (GPT-2 345M, 8 stages, 16 micro-batches). Slicing "
              "halves both the compute and the communication legs of the "
              "startup path, so its relative gain *grows* as the "
              "interconnect slows -- the doubled forward-communication "
              "count never bites because the §III-C aggregation cancels "
              "the blocked first-half transfers\n\n");
  {
    auto cfg = config_for("gpt2-345m", 4);
    const double base_comm = cfg.comm_ms;
    util::Table t({"Comm x", "Comm (ms)", "plain 1F1B", "sliced",
                   "slicing gain", "sliced micro-batches"});
    for (double factor : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      cfg.comm_ms = base_comm * factor;
      const auto planned = core::plan(cfg, 8, 16);
      const auto costs = core::stage_costs(cfg, planned.partition);
      const auto slicing = core::solve_slicing(costs, cfg.comm_ms, 16);
      const auto plain =
          sim::execute(core::build_1f1b(costs, 16, cfg.comm_ms));
      const auto sliced = sim::execute(core::build_sliced_1f1b(
          costs, 16, cfg.comm_ms, slicing.sliced_micro_batches));
      t.add_row({util::Table::fmt(factor, 1),
                 util::Table::fmt(cfg.comm_ms, 2),
                 util::Table::fmt(plain.iteration_ms, 1),
                 util::Table::fmt(sliced.iteration_ms, 1),
                 util::Table::fmt(
                     100.0 * (plain.iteration_ms - sliced.iteration_ms) /
                         plain.iteration_ms,
                     2) + "%",
                 std::to_string(slicing.sliced_micro_batches)});
    }
    std::printf("%s\n", t.to_ascii().c_str());
  }

  std::printf("Ablation 5 -- peak memory of the worst stage per schedule "
              "(GPT-2 345M, 4 stages, 8 micro-batches, GiB; capacity %.1f "
              "GiB). GPipe pays for all in-flight micro-batches; the "
              "interleaved schedule for its extra warmup chunks; AutoPipe's "
              "slicing is free (§III-C)\n\n",
              costmodel::rtx3090().mem_capacity_bytes / double(1ull << 30));
  {
    util::Table t({"micro-batch size", "1F1B", "GPipe", "Interleaved x2",
                   "AutoPipe sliced"});
    for (int mbs : {4, 16, 32}) {
      const auto cfg = config_for("gpt2-345m", mbs);
      const auto uniform = planners::megatron_partition(cfg, 4);
      auto worst = [&](costmodel::ScheduleKind kind, int chunks) {
        double peak = 0;
        bool oom = false;
        for (int s = 0; s < 4; ++s) {
          costmodel::StageFootprint fp;
          fp.param_bytes = core::stage_param_bytes(cfg, uniform, s);
          fp.stash_bytes = core::stage_stash_bytes(cfg, uniform, s);
          fp.work_bytes = core::stage_work_bytes(cfg, uniform, s);
          const auto est = costmodel::stage_memory(
              fp, s, 4, kind, 8, chunks, cfg.device.mem_capacity_bytes);
          peak = std::max(peak, est.total_bytes);
          oom = oom || est.oom;
        }
        return util::Table::fmt(peak / double(1ull << 30), 2) +
               (oom ? " (OOM)" : "");
      };
      t.add_row({std::to_string(mbs),
                 worst(costmodel::ScheduleKind::OneFOneB, 1),
                 worst(costmodel::ScheduleKind::GPipe, 1),
                 worst(costmodel::ScheduleKind::Interleaved, 2),
                 worst(costmodel::ScheduleKind::AutoPipeSliced, 1)});
    }
    std::printf("%s", t.to_ascii().c_str());
  }
  return 0;
}
