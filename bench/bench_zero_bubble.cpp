// Zero-bubble (split-backward) schedules vs AutoPipe's sliced 1F1B.
//
//   ./bench_zero_bubble [--model gpt2-1.3b] [--micro-batch 4]
//                       [--stages 8] [--micro-batches 16]
//                       [--assert-speedup 0]
//
// For each pipeline depth (the --stages value plus a sweep of shallower
// depths) the harness plans the partition, prices its per-stage costs --
// including the analytic B/W split -- and times three schedules under
// "actual run" conditions (kernel-launch overhead, discrete-event
// executor): plain 1F1B, sliced 1F1B (the Slicer's choice), and the
// zero-bubble schedule whose deferred weight ops fill the bubbles. One
// JSON line per (depth, schedule) plus the metadata line.
//
// --assert-speedup S exits non-zero unless zero-bubble is at least S times
// the sliced-1F1B throughput at the deepest depth; CI runs S=1.0 on an
// 8-stage pipeline as a smoke check that the win never regresses to a loss.
#include <cstdio>
#include <string>

#include "common.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace autopipe;
  using namespace autopipe::bench;
  const util::Cli cli(argc, argv);
  const std::string model = cli.get("model", "gpt2-1.3b");
  const int mbs = cli.checked_int("micro-batch", 4, 1, 64);
  const int max_stages = cli.checked_int("stages", 8, 2, 64);
  const int m = cli.checked_int("micro-batches", 2 * max_stages, 2, 256);
  const double assert_speedup =
      cli.checked_double("assert-speedup", 0.0, 0.0, 100.0);

  emit_metadata("zero_bubble");

  const auto cfg = config_for(model, mbs);
  const auto opts = actual_run_options(cfg);

  double deep_sliced = 0, deep_zb = 0;
  for (int depth = 2; depth <= max_stages; depth *= 2) {
    const int micro = std::max(m, depth);
    const auto planned = core::plan(cfg, depth, micro);
    const auto costs = core::stage_costs(cfg, planned.partition);

    const double plain =
        sim::execute(core::build_1f1b(costs, micro, cfg.comm_ms), opts)
            .iteration_ms;
    const auto slicing = core::solve_slicing(costs, cfg.comm_ms, micro);
    const double sliced =
        sim::execute(core::build_sliced_1f1b(costs, micro, cfg.comm_ms,
                                             slicing.sliced_micro_batches),
                     opts)
            .iteration_ms;
    const auto zb_schedule = core::make_zero_bubble(costs, micro, cfg.comm_ms);
    const double zb = sim::execute(zb_schedule, opts).iteration_ms;
    // The analytic evaluator must agree with the zero-overhead executor --
    // the same invariant the fuzz suite enforces; here it guards the bench
    // itself against pricing drift.
    const double zb_eval = core::evaluate_schedule(zb_schedule).iteration_ms;
    const double zb_exec = sim::execute(zb_schedule).iteration_ms;

    std::printf(
        "{\"bench\":\"zero_bubble\",\"model\":\"%s\",\"stages\":%d,"
        "\"micro_batches\":%d,\"plain_1f1b_ms\":%.3f,\"sliced_1f1b_ms\":%.3f,"
        "\"zero_bubble_ms\":%.3f,\"speedup_vs_sliced\":%.4f,"
        "\"eval_exec_agree\":%s}\n",
        model.c_str(), depth, micro, plain, sliced, zb, sliced / zb,
        zb_eval == zb_exec ? "true" : "false");
    if (zb_eval != zb_exec) {
      std::fprintf(stderr,
                   "error: analytic eval %.6f != executor %.6f at depth %d\n",
                   zb_eval, zb_exec, depth);
      return 1;
    }
    if (depth == max_stages || depth * 2 > max_stages) {
      deep_sliced = sliced;
      deep_zb = zb;
    }
  }

  if (assert_speedup > 0.0) {
    const double speedup = deep_sliced / deep_zb;
    if (!(speedup >= assert_speedup)) {
      std::fprintf(stderr,
                   "error: zero-bubble speedup %.3fx over sliced 1F1B is "
                   "below the required %.3fx\n",
                   speedup, assert_speedup);
      return 1;
    }
    std::printf("{\"bench\":\"zero_bubble\",\"assert_speedup\":%.2f,"
                "\"measured\":%.4f,\"ok\":true}\n",
                assert_speedup, deep_sliced / deep_zb);
  }
  return 0;
}
