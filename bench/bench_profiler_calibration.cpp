// Analytic-vs-measured calibration trajectory for the model zoo.
//
// For every Table-I model this harness profiles the real CPU tensor blocks
// (BlockProfiler) and compares against the analytic cost model for the
// *same* shape, emitting one JSON line per model so the analytic model's
// accuracy can be tracked across PRs:
//
//   {"bench":"profiler_calibration","model":"gpt2-345m","mbs":1,"seq":32,
//    "vocab":2048,"mean_rel_err":...,"max_rel_err":...,"per_block":[...]}
//
// The zoo dimensions are clamped (--seq, --vocab, --mbs flags; defaults
// keep the run CPU-tractable: full-width hidden/heads, short sequences,
// truncated vocabulary) -- the clamped dimensions are part of the JSON so
// runs stay comparable. Layer timings are shared across layers (identical
// architecture), so per-block error covers the four distinct block kinds.
#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common.h"
#include "costmodel/model_zoo.h"
#include "profiler/block_profiler.h"
#include "profiler/calibration.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace autopipe;
  bench::emit_metadata("profiler_calibration");
  const util::Cli cli(argc, argv);
  const int mbs = cli.get_int("mbs", 1);
  const int seq_cap = cli.get_int("seq", 32);
  const int vocab_cap = cli.get_int("vocab", 2048);

  profiler::ProfilerOptions opts;
  opts.warmup = cli.get_int("warmup", 1);
  opts.samples = cli.get_int("samples", 3);
  const profiler::BlockProfiler prof(opts);

  std::printf("profiler calibration (mbs %d, seq<=%d, vocab<=%d)\n", mbs,
              seq_cap, vocab_cap);
  for (costmodel::ModelSpec spec : costmodel::model_zoo()) {
    spec.default_seq = std::min(spec.default_seq, seq_cap);
    spec.vocab = std::min(spec.vocab, vocab_cap);
    const costmodel::TrainConfig train{mbs, 0, true};

    const profiler::ProfileResult measured = prof.profile(spec, train);
    const auto analytic = costmodel::build_model_config(spec, train);
    const auto report = profiler::calibrate(measured.config, analytic);

    std::ostringstream json;
    json.precision(6);
    json << "{\"bench\":\"profiler_calibration\",\"model\":\"" << spec.name
         << "\",\"mbs\":" << mbs << ",\"seq\":" << spec.default_seq
         << ",\"vocab\":" << spec.vocab
         << ",\"profile_wall_ms\":" << measured.wall_ms
         << ",\"mean_rel_err\":" << report.mean_rel_err
         << ",\"max_rel_err\":" << report.max_rel_err << ",\"per_block\":[";
    bool first = true;
    for (const auto& row : report.rows) {
      // One entry per distinct block kind (layers share timings).
      if (row.name.rfind("layer0.", 0) != 0 && row.name.find('.') !=
          std::string::npos) {
        continue;
      }
      if (!first) json << ",";
      first = false;
      json << "{\"name\":\"" << row.name
           << "\",\"fwd_rel_err\":" << row.fwd_rel_err
           << ",\"bwd_rel_err\":" << row.bwd_rel_err << "}";
    }
    json << "]}";
    std::printf("%s\n", json.str().c_str());
  }
  return 0;
}
