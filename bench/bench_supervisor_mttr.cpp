// Supervisor MTTR benchmark (EXPERIMENTS.md "Self-healing MTTR").
//
// Runs seeded chaos soaks through supervisor::Supervisor (Replace mode,
// in-memory checkpoint storage) and emits one JSON line per fault class:
//
//   {"kind":"hang","incidents":N,"detect_p50_ms":...,"mttr_p50_ms":...,
//    "detect_p95_ms":...,"mttr_p95_ms":...,"downtime_total_ms":...}
//
// detect is fault occurrence -> supervisor awareness (for hangs: the
// watched silence until the watchdog fired, i.e. detection latency);
// mttr is awareness -> the failed logical step completing again (repair
// time). Medians are taken across every incident of the class over all
// seeds. A final "all" line aggregates the run: total incidents, total
// recovery actions, total downtime, and how many soaks completed (every
// one must -- a non-completed soak turns the exit code nonzero).
//
// Flags: --seeds N (default 5), --steps N (default 12), --incidents N
// (scripted events per soak, default 8), --grace-ms MS (watchdog floor,
// default 500 -- the dominant term of hang MTTR), --quiet (suppress the
// per-soak progress lines on stderr).
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "ckpt/storage.h"
#include "common.h"
#include "model/transformer.h"
#include "runtime/train_session.h"
#include "supervisor/chaos.h"
#include "supervisor/supervisor.h"
#include "util/cli.h"
#include "util/stats.h"

namespace {

using namespace autopipe;

supervisor::SupervisorOptions tiny_supervisor(ckpt::Storage* storage,
                                              int steps, double grace_ms) {
  model::TinySpec spec;
  spec.layers = 3;  // 8 blocks on 3 stages, the fault-suite workhorse
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  costmodel::ModelSpec mspec;
  mspec.name = "tiny";
  mspec.num_layers = spec.layers;
  mspec.hidden = spec.hidden;
  mspec.heads = spec.heads;
  mspec.vocab = spec.vocab;
  mspec.default_seq = spec.seq;
  mspec.causal = spec.causal;

  supervisor::SupervisorOptions o;
  o.session.spec = spec;
  o.session.counts = {2, 3, 3};
  o.session.micro_batch = 2;
  o.session.num_micro_batches = 6;
  o.session.ckpt_dir = "bench/mttr";
  o.session.ckpt_interval = 2;
  o.session.ckpt_keep = 3;
  o.session.storage = storage;
  o.config = costmodel::build_model_config(mspec, {4, 0, true});
  o.target_steps = steps;
  o.watchdog.grace_ms = grace_ms;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int seeds = cli.checked_int("seeds", 5, 1, 1 << 20);
    const int steps = cli.checked_int("steps", 12, 1, 1 << 20);
    const int incidents = cli.checked_int("incidents", 8, 1, 1 << 20);
    const double grace_ms =
        cli.checked_double("grace-ms", 500.0, 50.0, 1e6);
    const bool quiet = cli.get_bool("quiet", false);

    bench::emit_metadata("supervisor_mttr");

    std::map<std::string, std::vector<double>> detect, mttr;
    double downtime_total = 0;
    int total_incidents = 0;
    int total_actions = 0;
    int completed = 0;

    for (int s = 0; s < seeds; ++s) {
      supervisor::ChaosScriptOptions copts;
      copts.steps = steps;
      copts.devices = 3;
      copts.ops_per_device = 12;
      copts.incidents = incidents;
      copts.straggler_delay_ms = 30;
      const supervisor::ChaosScript script = supervisor::ChaosScript::sample(
          copts, static_cast<std::uint64_t>(s) * 7919 + 101);

      ckpt::MemStorage mem;
      supervisor::SupervisorOptions o =
          tiny_supervisor(&mem, steps, grace_ms);
      o.chaos = &script;
      o.restart_budget = 2 * incidents + 8;
      supervisor::Supervisor sup(o);
      const supervisor::SupervisorReport report = sup.run();
      if (report.completed) {
        ++completed;
      } else if (!quiet) {
        std::fprintf(stderr, "seed %d: aborted: %s\n", s,
                     report.abort_reason.c_str());
      }
      for (const supervisor::Incident& inc : report.incidents) {
        const std::string kind = supervisor::to_string(inc.cls);
        detect[kind].push_back(inc.detect_ms);
        mttr[kind].push_back(inc.downtime_ms);
        downtime_total += inc.downtime_ms;
        ++total_incidents;
      }
      total_actions += report.recovery_actions;
      if (!quiet) {
        std::fprintf(stderr, "seed %d: %zu incident(s), %d action(s)\n", s,
                     report.incidents.size(), report.recovery_actions);
      }
    }

    for (const auto& [kind, ds] : detect) {
      const std::vector<double>& ms = mttr[kind];
      std::printf(
          "{\"kind\":\"%s\",\"incidents\":%zu,\"detect_p50_ms\":%.3f,"
          "\"detect_p95_ms\":%.3f,\"mttr_p50_ms\":%.3f,\"mttr_p95_ms\":%.3f,"
          "\"downtime_total_ms\":%.3f}\n",
          kind.c_str(), ds.size(), util::median(ds),
          util::percentile(ds, 95.0), util::median(ms),
          util::percentile(ms, 95.0), util::sum(ms));
    }
    std::printf(
        "{\"kind\":\"all\",\"soaks\":%d,\"completed\":%d,\"incidents\":%d,"
        "\"recovery_actions\":%d,\"downtime_total_ms\":%.3f}\n",
        seeds, completed, total_incidents, total_actions, downtime_total);
    return completed == seeds ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
