// Fault-recovery benchmark (EXPERIMENTS.md "Fault injection and recovery").
//
// Emits one JSON line per (fault kind, seed) to stdout:
//
//   straggler / spike / outage  -- Monte-Carlo of a planned GPT-2 345M 1F1B
//     schedule on the discrete-event executor under a distribution that
//     injects only that kind; p50/p95/p99 are iteration-time percentiles
//     over the trials and recovery_ms is 0 (nothing fails permanently).
//   transient / crash -- the thread runtime trains the tiny transformer
//     under an injected fault, recovering through
//     runtime::run_iteration_with_recovery; the run repeats `--repeats`
//     times per seed, p50/p95/p99 are recovery-time percentiles over the
//     repeats, and recovery_ms is their median. Gradients are checked
//     against the single-process reference every repeat -- a mismatch turns
//     the line into {"error": ...} and the exit code nonzero.
//
// Flags: --trials N (sim Monte-Carlo trials, default 200), --repeats N
// (runtime repeats per seed, default 5), --seeds N (default 5), --quiet.
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common.h"
#include "core/autopipe.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "faults/fault_plan.h"
#include "faults/robustness.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/recovery.h"
#include "util/cli.h"
#include "util/stats.h"

namespace {

using namespace autopipe;

void emit_sim_line(const char* kind, std::uint64_t seed,
                   const faults::RobustnessReport& r) {
  std::printf(
      "{\"kind\":\"%s\",\"seed\":%llu,\"trials\":%d,\"nominal_ms\":%.3f,"
      "\"recovery_ms\":0.0,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"worst_ms\":%.3f,\"link_retries\":%d}\n",
      kind, static_cast<unsigned long long>(seed), r.trials, r.nominal_ms,
      r.p50_ms, r.p95_ms, r.p99_ms, r.worst_ms, r.link_retries);
}

struct RuntimeSetup {
  model::TinySpec spec;
  costmodel::ModelConfig config;
  std::vector<model::Batch> micro;
  model::Batch whole;
  double scale = 0;

  RuntimeSetup() {
    spec.layers = 3;  // 8 blocks, enough to degrade 3 -> 2 stages
    spec.hidden = 16;
    spec.heads = 2;
    spec.vocab = 32;
    spec.seq = 4;
    costmodel::ModelSpec ms;
    ms.name = "tiny";
    ms.num_layers = spec.layers;
    ms.hidden = spec.hidden;
    ms.heads = spec.heads;
    ms.vocab = spec.vocab;
    ms.default_seq = spec.seq;
    ms.causal = spec.causal;
    config = costmodel::build_model_config(ms, {4, 0, true});
    model::SyntheticCorpus corpus(spec.vocab);
    const int B = 4, m = 6;
    whole = corpus.next_batch(B * m, spec.seq);
    micro = model::SyntheticCorpus::split_micro_batches(whole, spec.seq, B);
    scale = 1.0 / (B * m * spec.seq);
  }
};

/// One recovery run; returns recovery wall time in ms, throws on gradient
/// divergence from the single-process reference.
double run_recovery_once(const RuntimeSetup& setup,
                         const faults::FaultPlan& plan) {
  model::TransformerModel ref(setup.spec), piped(setup.spec);
  ref.zero_grads();
  ref.reference_step(setup.whole.ids, setup.whole.targets, setup.scale);
  piped.zero_grads();

  runtime::RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.plan = {3, 24, 0, false, 1};
  const auto t0 = std::chrono::steady_clock::now();
  const auto report = runtime::run_iteration_with_recovery(
      piped, setup.config, {2, 3, 3}, setup.micro, setup.scale, rec);
  const double total_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  if (ref.max_grad_diff(piped) > 1e-4) {
    throw std::runtime_error("recovered gradients diverged from reference");
  }
  // In-place transient absorption never enters the recovery loop; charge
  // the whole (re)execution then.
  return report.recovered ? report.recovery_ms : total_ms;
}

int emit_runtime_lines(const char* kind, const RuntimeSetup& setup,
                       int seeds, int repeats) {
  int failures = 0;
  for (int s = 0; s < seeds; ++s) {
    faults::FaultPlan plan;
    if (std::string(kind) == "crash") {
      faults::DeviceCrash crash;
      crash.device = s % 3;
      crash.after_ops = 2 + s;  // vary where in the iteration it dies
      plan.crashes.push_back(crash);
    } else {
      faults::TransientOpFault t;
      t.device = s % 3;
      t.op_index = 1 + s;
      t.failures = 5;  // beyond the in-place budget -> escalates
      plan.transients.push_back(t);
    }
    try {
      std::vector<double> samples;
      for (int r = 0; r < repeats; ++r) {
        samples.push_back(run_recovery_once(setup, plan));
      }
      std::printf(
          "{\"kind\":\"%s\",\"seed\":%d,\"trials\":%d,\"nominal_ms\":0.0,"
          "\"recovery_ms\":%.3f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
          "\"p99_ms\":%.3f,\"worst_ms\":%.3f,\"link_retries\":0}\n",
          kind, s, repeats, util::percentile(samples, 50.0),
          util::percentile(samples, 50.0), util::percentile(samples, 95.0),
          util::percentile(samples, 99.0),
          util::percentile(samples, 100.0));
    } catch (const std::exception& e) {
      std::printf("{\"kind\":\"%s\",\"seed\":%d,\"error\":\"%s\"}\n", kind, s,
                  e.what());
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace autopipe;
  const util::Cli cli(argc, argv);
  bench::emit_metadata("fault_recovery");
  const int trials = cli.checked_int("trials", 200, 1, 1 << 20);
  const int repeats = cli.checked_int("repeats", 5, 1, 1 << 12);
  const int seeds = cli.checked_int("seeds", 5, 1, 1 << 12);

  // Sim substrate: a planned 4-stage GPT-2 345M pipeline, m = 16.
  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name("gpt2-345m"), {4, 0, true});
  const int stages = 4, m = 16;
  const auto planned = core::plan(cfg, stages, m);
  const auto costs = core::stage_costs(cfg, planned.partition);
  const core::Schedule schedule = core::build_1f1b(costs, m, cfg.comm_ms);

  struct SimKind {
    const char* name;
    faults::FaultDistribution dist;
  };
  faults::FaultDistribution straggler_only;
  straggler_only.spike_prob = 0;
  faults::FaultDistribution spike_only;
  spike_only.straggler_prob = 0;
  spike_only.spike_prob = 0.5;
  faults::FaultDistribution outage_only;
  outage_only.straggler_prob = 0;
  outage_only.spike_prob = 0;
  outage_only.outage_prob = 0.5;
  outage_only.retry_backoff_ms = 2.0;
  const SimKind sim_kinds[] = {{"straggler", straggler_only},
                               {"spike", spike_only},
                               {"outage", outage_only}};
  for (const SimKind& k : sim_kinds) {
    for (int s = 0; s < seeds; ++s) {
      faults::RobustnessOptions rob;
      rob.trials = trials;
      rob.seed = static_cast<std::uint64_t>(1000 * (s + 1));
      rob.dist = k.dist;
      emit_sim_line(k.name, rob.seed,
                    faults::evaluate_robustness(schedule, {}, rob));
    }
  }

  // Runtime substrate: transient escalation and device crash + replan.
  const RuntimeSetup setup;
  int failures = 0;
  failures += emit_runtime_lines("transient", setup, seeds, repeats);
  failures += emit_runtime_lines("crash", setup, seeds, repeats);
  return failures == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
