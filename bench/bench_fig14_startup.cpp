// Fig. 14: startup-overhead comparison.
//
// (a) 4-stage pipeline, sweeping micro-batch size: Megatron-LM 1F1B vs the
//     interleaved schedule vs the Slicer alone vs full AutoPipe. The
//     interleaved schedule halves startup but stores more activations and
//     OOMs at large micro-batch sizes.
// (b) micro-batch size 4, sweeping depth: the interleaved schedule needs
//     layers % (stages*chunks) == 0, so some depths are 'X'.
// AutoPipe's startup is slightly above the Slicer-alone column because the
// Planner front-loads the last stage.
#include "common.h"

namespace {

using namespace autopipe;
using namespace autopipe::bench;

struct StartupRow {
  std::string megatron, interleaved, slicer, autopipe;
};

StartupRow startup_row(const core::ModelConfig& cfg, int stages, int m,
                       int chunks) {
  StartupRow row;
  const auto opts = actual_run_options(cfg);
  const auto uniform = planners::megatron_partition(cfg, stages);
  const auto uniform_costs = core::stage_costs(cfg, uniform);

  row.megatron = util::Table::fmt(
      sim::execute(core::build_1f1b(uniform_costs, m, cfg.comm_ms), opts)
          .startup_ms,
      1);

  // std::string("X") instead of a char* assign: gcc 12 at -O2 emits a
  // bogus -Wrestrict through the inlined assign(const char*) path.
  if (!planners::megatron_interleaved_supports(cfg, stages, chunks) ||
      m % stages != 0) {
    row.interleaved = std::string("X");
  } else if (!fits(cfg, uniform, costmodel::ScheduleKind::Interleaved, m,
                   chunks)) {
    row.interleaved = std::string("OOM");
  } else {
    row.interleaved = util::Table::fmt(
        sim::execute(core::build_interleaved(
                         planners::megatron_interleaved_costs(cfg, stages,
                                                              chunks),
                         m, cfg.comm_ms),
                     opts)
            .startup_ms,
        1);
  }

  const auto uniform_slicing =
      core::solve_slicing(uniform_costs, cfg.comm_ms, m);
  row.slicer = util::Table::fmt(
      sim::execute(core::build_sliced_1f1b(
                       uniform_costs, m, cfg.comm_ms,
                       uniform_slicing.sliced_micro_batches),
                   opts)
          .startup_ms,
      1);

  const auto planned = core::plan(cfg, stages, m);
  const auto costs = core::stage_costs(cfg, planned.partition);
  const auto slicing = core::solve_slicing(costs, cfg.comm_ms, m);
  row.autopipe = util::Table::fmt(
      sim::execute(core::build_sliced_1f1b(costs, m, cfg.comm_ms,
                                           slicing.sliced_micro_batches),
                   opts)
          .startup_ms,
      1);
  return row;
}

}  // namespace

int main() {
  autopipe::bench::emit_metadata("fig14_startup");
  const int chunks = 2;
  std::printf("Fig. 14 -- startup overhead (ms) of GPT-2 345M "
              "(X = configuration unsupported, OOM = out of memory)\n\n");

  std::printf("(a) 4-stage pipeline, sweeping micro-batch size (8 "
              "micro-batches per iteration):\n");
  util::Table a({"micro-batch size", "Megatron-LM", "Interleaved", "Slicer",
                 "AutoPipe"});
  for (int mbs : {4, 8, 16, 24, 32}) {
    const auto cfg = config_for("gpt2-345m", mbs);
    const auto row = startup_row(cfg, 4, 8, chunks);
    a.add_row({std::to_string(mbs), row.megatron, row.interleaved, row.slicer,
               row.autopipe});
  }
  show_table(a, "fig14a_startup_vs_mbs");

  std::printf("(b) micro-batch size 4, sweeping pipeline depth (m = 2 x "
              "depth):\n");
  util::Table b({"stages", "Megatron-LM", "Interleaved", "Slicer",
                 "AutoPipe"});
  const auto cfg = config_for("gpt2-345m", 4);
  for (int stages : {2, 4, 6, 8, 12}) {
    if (!planners::megatron_supports(cfg, stages)) continue;
    const auto row = startup_row(cfg, stages, 2 * stages, chunks);
    b.add_row({std::to_string(stages), row.megatron, row.interleaved,
               row.slicer, row.autopipe});
  }
  show_table(b, "fig14b_startup_vs_depth");
  std::printf("Expected shape: Interleaved and Slicer both roughly halve "
              "Megatron-LM's startup; Interleaved OOMs at large micro-batch "
              "and X's where layers %% (stages*chunks) != 0; AutoPipe is "
              "slightly above Slicer because the Planner front-loads the "
              "last stage.\n");
  return 0;
}
