// Fig. 10: iteration time vs pipeline depth.
//
// Micro-batch count fixed at twice the depth; micro-batch size 4 for the
// GPT-2 models and 16 for BERT-large (the paper's settings). Megatron-LM
// requires the depth to divide the layer count, so GPT-2 762M (36 layers)
// uses a 9-stage pipeline where the others use 8.
#include "common.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("fig10_pipeline_depth");
  std::printf("Fig. 10 -- iteration time (ms) vs pipeline depth; "
              "m = 2 x depth (lower is better)\n\n");

  struct ModelCase {
    const char* model;
    int mbs;
  };
  for (const auto& mc : {ModelCase{"gpt2-345m", 4}, ModelCase{"gpt2-762m", 4},
                         ModelCase{"gpt2-1.3b", 4},
                         ModelCase{"bert-large", 16}}) {
    const auto cfg = config_for(mc.model, mc.mbs);
    util::Table t({"stages", "Megatron-LM", "Slicer", "Planner", "AutoPipe",
                   "speedup"});
    for (int depth : {2, 3, 4, 6, 8, 9, 12}) {
      if (!planners::megatron_supports(cfg, depth)) continue;
      // Match the paper: 8 stages for 24-layer models, 9 for 762M.
      if (depth == 9 && cfg.spec.num_layers != 36) continue;
      if (depth == 8 && cfg.spec.num_layers == 36) continue;
      const int m = 2 * depth;
      const auto v = time_variants(cfg, depth, m);
      t.add_row({std::to_string(depth), util::Table::fmt(v.megatron, 1),
                 util::Table::fmt(v.slicer, 1),
                 util::Table::fmt(v.planner, 1),
                 util::Table::fmt(v.autopipe, 1),
                 util::Table::fmt(v.megatron / v.autopipe, 3) + "x"});
    }
    std::printf("%s (micro-batch %d):\n", mc.model, mc.mbs);
    show_table(t, std::string("fig10_") + mc.model);
  }
  std::printf("Expected shape: the Slicer hurts slightly at depth 2 and "
              "helps at depth >= 4; Planner gains grow with depth; AutoPipe "
              "combines both (paper: 1.02x-1.30x).\n");
  return 0;
}
