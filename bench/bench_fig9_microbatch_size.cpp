// Fig. 9: iteration time vs micro-batch size.
//
// Fixed 4-stage pipeline, 8 micro-batches per iteration (as in the paper);
// columns are Megatron-LM (uniform 1F1B), +Slicer, +Planner, and full
// AutoPipe. GPT-2 762M stops at micro-batch 24 (OOM at 32, as observed).
#include "common.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("fig9_microbatch_size");
  const int stages = 4, m = 8;
  std::printf("Fig. 9 -- iteration time (ms) vs micro-batch size; "
              "%d stages, %d micro-batches per iteration\n",
              stages, m);
  std::printf("(lower is better; speedup = Megatron-LM / AutoPipe)\n\n");

  for (const std::string model :
       {"gpt2-345m", "gpt2-762m", "gpt2-1.3b", "bert-large"}) {
    util::Table t({"micro-batch size", "Megatron-LM", "Slicer", "Planner",
                   "AutoPipe", "speedup"});
    for (int mbs : {1, 2, 4, 8, 16, 24, 32}) {
      const auto cfg = config_for(model, mbs);
      // The paper's rule: drop configurations that OOM (762M at mbs 32).
      if (!fits(cfg, planners::megatron_partition(cfg, stages),
                costmodel::ScheduleKind::OneFOneB, m)) {
        t.add_row({std::to_string(mbs), "OOM", "OOM", "OOM", "OOM", "-"});
        continue;
      }
      const auto v = time_variants(cfg, stages, m);
      t.add_row({std::to_string(mbs), util::Table::fmt(v.megatron, 1),
                 util::Table::fmt(v.slicer, 1),
                 util::Table::fmt(v.planner, 1),
                 util::Table::fmt(v.autopipe, 1),
                 util::Table::fmt(v.megatron / v.autopipe, 3) + "x"});
    }
    std::printf("%s:\n", model.c_str());
    show_table(t, "fig9_" + model);
  }
  return 0;
}
