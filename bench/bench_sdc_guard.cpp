// SDC guard benchmark: what the integrity guards cost on the training hot
// path, what fraction of injected bit flips they catch, and what escapes
// without them.
//
//   ./bench_sdc_guard [--hidden 128] [--seq 16] [--vocab 256] [--layers 4]
//                     [--stages 2] [--micro-batches 8] [--micro-batch 4]
//                     [--iters 5] [--reps 5] [--weight-interval 8]
//                     [--injections 12] [--max-overhead-pct 0]
//                     [--assert-coverage 0]
//
// Three measurements, one JSON line each (medians over --reps):
//
//   overhead   clean training with the production guard config (handoff
//              CRCs + non-finite scans + periodic weight sentinel every
//              --weight-interval steps) vs guards-off, same model/data.
//              The acceptance bar is < 3% on the bench_runtime_hotpath
//              end-to-end config (the defaults above).
//   coverage   --injections seeded bit flips cycling activation-in-flight /
//              gradient-in-flight / weight-between-steps against a
//              guards-on session (weight sentinel every step for tight
//              detection); counts how many raise a typed Corruption
//              failure. The guard contract is 100%.
//   escape     the same flips against a guards-off session: runs that end
//              with silently diverged state count as escapes (the
//              unconditional non-finite loss backstop still catches flips
//              that blow up the math, reported separately).
//
// --max-overhead-pct P exits non-zero if the overhead exceeds P percent;
// --assert-coverage 1 exits non-zero unless every injection was detected.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common.h"
#include "core/balanced_dp.h"
#include "faults/sdc.h"
#include "model/ops.h"
#include "runtime/stage_failure.h"
#include "runtime/train_session.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace autopipe;

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct BenchConfig {
  model::TinySpec spec;
  std::vector<int> counts;
  int micro_batch = 4;
  int num_micro_batches = 8;
};

runtime::TrainSessionOptions session_options(const BenchConfig& cfg,
                                             const guard::GuardOptions& g) {
  runtime::TrainSessionOptions opts;
  opts.spec = cfg.spec;
  opts.counts = cfg.counts;
  opts.micro_batch = cfg.micro_batch;
  opts.num_micro_batches = cfg.num_micro_batches;
  opts.guard = g;
  return opts;
}

/// Flips one deterministic bit in a parameter tensor of the live model --
/// the between-steps corruption the weight sentinel exists to catch.
void flip_weight(runtime::TrainSession& session, std::uint64_t salt) {
  model::TransformerModel& m = session.model();
  util::Rng rng(salt);
  const int b = static_cast<int>(rng.next_u64() % m.num_blocks());
  auto& params = m.block(b).params();
  auto& value = params[rng.next_u64() % params.size()].value;
  faults::flip_float_bit(value.data(), value.numel(), rng.next_u64(),
                         static_cast<int>(rng.next_u64() % 32));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  BenchConfig cfg;
  cfg.spec.hidden = cli.checked_int("hidden", 128, 8, 4096);
  cfg.spec.heads = cli.checked_int("heads", 4, 1, 64);
  cfg.spec.seq = cli.checked_int("seq", 16, 2, 4096);
  cfg.spec.vocab = cli.checked_int("vocab", 256, 4, 65536);
  cfg.spec.layers = cli.checked_int("layers", 4, 1, 64);
  const int stages = cli.checked_int("stages", 2, 1, 16);
  cfg.num_micro_batches = cli.checked_int("micro-batches", 8, 1, 64);
  cfg.micro_batch = cli.checked_int("micro-batch", 4, 1, 64);
  const int iters = cli.checked_int("iters", 5, 1, 1000);
  const int reps = cli.checked_int("reps", 5, 1, 100);
  const int weight_interval = cli.checked_int("weight-interval", 8, 1, 1 << 20);
  const int injections = cli.checked_int("injections", 12, 1, 1 << 20);
  const double max_overhead =
      cli.checked_double("max-overhead-pct", 0.0, 0.0, 1000.0);
  const bool assert_coverage = cli.checked_int("assert-coverage", 0, 0, 1) != 0;
  model::set_fast_ops(true);

  bench::emit_metadata("sdc_guard");

  {
    model::TransformerModel probe(cfg.spec);
    cfg.counts = core::balanced_counts(
        std::vector<double>(probe.num_blocks(), 1.0), stages);
  }

  // ------------------------------------------------------------ overhead
  // Production guard config: every handoff CRC'd, every output scanned,
  // weight sentinel every --weight-interval steps.
  guard::GuardOptions production;
  production.handoff_crc = true;
  production.nonfinite_checks = true;
  production.weight_interval = weight_interval;

  const auto train_ms = [&](const guard::GuardOptions& g) {
    std::vector<double> samples;
    samples.reserve(reps);
    for (int r = 0; r < reps; ++r) {
      runtime::TrainSession session(session_options(cfg, g));
      samples.push_back(time_ms([&] {
        for (int i = 0; i < iters; ++i) session.step();
      }));
    }
    return util::median(samples) / iters;
  };
  const double off_ms = train_ms(guard::GuardOptions{});
  const double on_ms = train_ms(production);
  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  std::printf(
      "{\"bench\":\"sdc_guard\",\"row\":\"overhead\","
      "\"shape\":\"h%d_s%d_v%d_l%d_st%d_m%d\",\"weight_interval\":%d,"
      "\"guards_off_ms\":%.3f,\"guards_on_ms\":%.3f,\"overhead_pct\":%.2f}\n",
      cfg.spec.hidden, cfg.spec.seq, cfg.spec.vocab, cfg.spec.layers, stages,
      cfg.num_micro_batches, weight_interval, off_ms, on_ms, overhead_pct);

  // ------------------------------------------------------------ coverage
  // Tight-detection config (sentinel every step): inject one flip per fresh
  // session, cycling the three corruption sites, and demand a typed
  // Corruption failure within the next two steps.
  guard::GuardOptions tight = production;
  tight.weight_interval = 1;
  const int boundaries = std::max(1, stages - 1);
  int detected = 0;
  for (int k = 0; k < injections; ++k) {
    runtime::TrainSession session(session_options(cfg, tight));
    faults::SdcInjector injector;
    session.run_options().sdc = &injector;
    session.step();  // one clean step so Adam moments exist
    util::Rng rng(0xc0ffee + static_cast<std::uint64_t>(k));
    const int site = k % 3;
    if (site == 2) {
      flip_weight(session, 0xc0ffee + static_cast<std::uint64_t>(k));
    } else {
      faults::SdcFault f;
      f.target = site == 0 ? faults::SdcTarget::Activation
                           : faults::SdcTarget::Gradient;
      f.boundary = k % boundaries;
      f.micro_batch = static_cast<int>(rng.next_u64()) % cfg.num_micro_batches;
      f.elem = rng.next_u64();
      f.bit = static_cast<int>(rng.next_u64() % 32);
      injector.arm(f);
    }
    try {
      session.step();
      session.step();
    } catch (const runtime::StageFailure& e) {
      if (e.kind() == runtime::FailureKind::Corruption) ++detected;
    }
  }
  const double coverage = static_cast<double>(detected) / injections;
  std::printf(
      "{\"bench\":\"sdc_guard\",\"row\":\"coverage\",\"injections\":%d,"
      "\"detected\":%d,\"coverage\":%.3f}\n",
      injections, detected, coverage);

  // -------------------------------------------------------------- escape
  // The same flips with every guard off. The run either trips the
  // unconditional non-finite loss backstop, or finishes -- and a finished
  // run whose state differs from the clean twin is a silent escape.
  const int total_steps = 4;
  const ckpt::TrainState clean = [&] {
    runtime::TrainSession session(session_options(cfg, {}));
    for (int i = 0; i < total_steps; ++i) session.step();
    return session.capture();
  }();
  int escaped = 0;
  int caught_offguard = 0;
  for (int k = 0; k < injections; ++k) {
    runtime::TrainSession session(session_options(cfg, {}));
    faults::SdcInjector injector;
    session.run_options().sdc = &injector;
    session.step();
    util::Rng rng(0xc0ffee + static_cast<std::uint64_t>(k));
    const int site = k % 3;
    if (site == 2) {
      flip_weight(session, 0xc0ffee + static_cast<std::uint64_t>(k));
    } else {
      faults::SdcFault f;
      f.target = site == 0 ? faults::SdcTarget::Activation
                           : faults::SdcTarget::Gradient;
      f.boundary = k % boundaries;
      f.micro_batch = static_cast<int>(rng.next_u64()) % cfg.num_micro_batches;
      f.elem = rng.next_u64();
      f.bit = static_cast<int>(rng.next_u64() % 32);
      injector.arm(f);
    }
    try {
      while (session.iteration() < total_steps) session.step();
      if (!(session.capture().blocks == clean.blocks)) ++escaped;
    } catch (const runtime::StageFailure&) {
      ++caught_offguard;
    }
  }
  std::printf(
      "{\"bench\":\"sdc_guard\",\"row\":\"escape\",\"injections\":%d,"
      "\"escaped\":%d,\"caught_offguard\":%d,\"escape_rate\":%.3f}\n",
      injections, escaped, caught_offguard,
      static_cast<double>(escaped) / injections);

  int rc = 0;
  if (assert_coverage && detected != injections) {
    std::fprintf(stderr, "FAIL: %d/%d injected flips detected\n", detected,
                 injections);
    rc = 1;
  }
  if (max_overhead > 0 && overhead_pct > max_overhead) {
    std::fprintf(stderr, "FAIL: guard overhead %.2f%% above %.2f%%\n",
                 overhead_pct, max_overhead);
    rc = 1;
  }
  return rc;
}
