// Fig. 13: pipeline balance comparison.
//
// Criterion: population stddev of per-stage running time (one micro-batch
// through each stage) for the Table-IV GPT-2 345M configurations. The
// paper reports AutoPipe improving balance 2.73x-6.89x over DAPPLE and
// 5.35x-12.7x over Piper.
#include "common.h"

#include "planners/dapple.h"
#include "planners/piper.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("fig13_balance");
  const auto cfg = config_for("gpt2-345m", 32);
  std::printf("Fig. 13 -- balance (stddev of per-stage time, ms) for GPT-2 "
              "345M, micro-batch 32 (lower is better)\n\n");

  util::Table t({"# of GPUs", "DAPPLE", "Piper", "AutoPipe",
                 "improvement vs D", "improvement vs P"});
  for (int gpus : {4, 8}) {
    const auto d = core::evaluate_plan(
        cfg, planners::dapple_plan(cfg, gpus, {8, 4, 512}), 512);
    const auto p = core::evaluate_plan(
        cfg, planners::piper_plan(cfg, gpus, {8, 512}), 512);
    const auto a = core::auto_plan(cfg, {gpus, 512, 0, true});
    const double ours = a.evaluation.balance_stddev_ms;
    t.add_row({std::to_string(gpus),
               util::Table::fmt(d.balance_stddev_ms, 1),
               util::Table::fmt(p.balance_stddev_ms, 1),
               util::Table::fmt(ours, 1),
               util::Table::fmt(d.balance_stddev_ms / ours, 2) + "x",
               util::Table::fmt(p.balance_stddev_ms / ours, 2) + "x"});
  }
  show_table(t, "fig13_balance");
  std::printf("note: in our reproduction DAPPLE's 1+N replication makes its "
              "unscaled stage times the most skewed; the paper measures "
              "Piper as worst. Ordering AutoPipe << baselines holds "
              "either way (see EXPERIMENTS.md).\n");
  return 0;
}
