// Shared helpers for the per-table/figure benchmark harnesses.
//
// Every harness prints the same rows/series the paper reports. Numbers are
// produced by the discrete-event executor with the RTX-3090 launch-overhead
// profile ("actual run" conditions); OOM cells come from the memory model.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "core/autopipe.h"
#include "core/planner.h"
#include "core/slicer.h"
#include "costmodel/memory.h"
#include "planners/megatron.h"
#include "sim/executor.h"
#include "util/table.h"

// Build provenance, injected by bench/CMakeLists.txt so every harness can
// stamp its output; "unknown" outside a git checkout / multi-config build.
#ifndef AUTOPIPE_GIT_SHA
#define AUTOPIPE_GIT_SHA "unknown"
#endif
#ifndef AUTOPIPE_BUILD_TYPE
#define AUTOPIPE_BUILD_TYPE "unknown"
#endif

namespace autopipe::bench {

/// One JSON metadata line per harness run -- git SHA, build type and
/// hardware thread count -- so archived bench output stays attributable to
/// the binary that produced it.
inline void emit_metadata(const std::string& bench_name) {
  std::printf(
      "{\"bench\":\"%s\",\"meta\":1,\"git_sha\":\"%s\","
      "\"build_type\":\"%s\",\"hw_threads\":%u}\n",
      bench_name.c_str(), AUTOPIPE_GIT_SHA, AUTOPIPE_BUILD_TYPE,
      std::thread::hardware_concurrency());
}

inline core::ModelConfig config_for(const std::string& model, int mbs) {
  return costmodel::build_model_config(costmodel::model_by_name(model),
                                       {mbs, 0, true});
}

inline sim::ExecOptions actual_run_options(const core::ModelConfig& cfg) {
  sim::ExecOptions opts;
  opts.per_op_overhead_ms = cfg.device.kernel_launch_ms;
  return opts;
}

/// Does `partition` fit device memory under `kind` with m micro-batches?
inline bool fits(const core::ModelConfig& cfg,
                 const core::Partition& partition,
                 costmodel::ScheduleKind kind, int m, int chunks = 1) {
  const int n = partition.num_stages();
  std::vector<costmodel::StageFootprint> stages(n);
  for (int s = 0; s < n; ++s) {
    stages[s].param_bytes = core::stage_param_bytes(cfg, partition, s);
    stages[s].stash_bytes = core::stage_stash_bytes(cfg, partition, s);
    stages[s].work_bytes = core::stage_work_bytes(cfg, partition, s);
  }
  return costmodel::fits_memory(stages, kind, m, chunks,
                                cfg.device.mem_capacity_bytes);
}

struct VariantTimes {
  double megatron = 0;  ///< uniform partition, plain 1F1B
  double slicer = 0;    ///< uniform partition + micro-batch slicing
  double planner = 0;   ///< planned partition, plain 1F1B
  double autopipe = 0;  ///< planned partition + micro-batch slicing
  bool megatron_oom = false;
};

/// Times the four Fig. 9/10 variants of one (model, depth, m) cell on the
/// event executor.
inline VariantTimes time_variants(const core::ModelConfig& cfg, int stages,
                                  int m) {
  VariantTimes out;
  const auto opts = actual_run_options(cfg);

  const core::Partition uniform = planners::megatron_partition(cfg, stages);
  out.megatron_oom =
      !fits(cfg, uniform, costmodel::ScheduleKind::OneFOneB, m);
  const auto uniform_costs = core::stage_costs(cfg, uniform);
  out.megatron =
      sim::execute(core::build_1f1b(uniform_costs, m, cfg.comm_ms), opts)
          .iteration_ms;
  const auto uniform_slicing =
      core::solve_slicing(uniform_costs, cfg.comm_ms, m);
  out.slicer = sim::execute(
                   core::build_sliced_1f1b(
                       uniform_costs, m, cfg.comm_ms,
                       uniform_slicing.sliced_micro_batches),
                   opts)
                   .iteration_ms;

  const auto planned = core::plan(cfg, stages, m);
  const auto costs = core::stage_costs(cfg, planned.partition);
  out.planner = sim::execute(core::build_1f1b(costs, m, cfg.comm_ms), opts)
                    .iteration_ms;
  const auto slicing = core::solve_slicing(costs, cfg.comm_ms, m);
  out.autopipe =
      sim::execute(core::build_sliced_1f1b(costs, m, cfg.comm_ms,
                                           slicing.sliced_micro_batches),
                   opts)
          .iteration_ms;
  return out;
}

inline std::string fmt_or(const std::optional<double>& v,
                          const char* fallback, int precision = 1) {
  return v ? util::Table::fmt(*v, precision) : fallback;
}

/// Prints the table and, when AUTOPIPE_CSV_DIR is set, also writes it to
/// <dir>/<name>.csv for downstream plotting.
inline void show_table(const util::Table& table, const std::string& name) {
  std::printf("%s\n", table.to_ascii().c_str());
  if (const char* dir = std::getenv("AUTOPIPE_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".csv";
    if (table.write_csv(path)) {
      std::printf("(csv written to %s)\n\n", path.c_str());
    }
  }
}

}  // namespace autopipe::bench
