// Checkpoint-overhead benchmark (EXPERIMENTS.md "Durable checkpointing").
//
// Answers "what does durability cost?": for each zoo model, a synthetic
// TrainState is sized from the model's real per-block param_bytes (capped
// per block so the harness stays CPU-friendly), written through the full
// crash-consistency protocol (records + fsync'd atomic manifest commit) to
// a PosixStorage temp directory and restored back. One JSON line per
// (model, interval):
//
//   {"bench":"ckpt_overhead","model":"gpt2-345m","interval":5,
//    "state_bytes":...,"write_ms":...,"restore_ms":...,
//    "iteration_ms":...,"amortized_pct":...}
//
// write_ms/restore_ms are medians over --repeats runs; iteration_ms is the
// planned 1F1B iteration on the discrete-event executor ("actual run"
// conditions); amortized_pct = write_ms / (interval * iteration_ms) * 100,
// i.e. the slowdown a training loop pays for checkpointing every
// `interval` iterations.
//
// Flags: --gpus N (default 4), --repeats N (default 5), --cap-floats N
// (per-block parameter cap, default 65536), --quiet.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/storage.h"
#include "common.h"
#include "core/autopipe.h"
#include "core/partition.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace autopipe;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A TrainState shaped like `cfg`'s block array: one parameter per block
/// holding min(param_bytes/4, cap) seeded floats, with Adam moments (so the
/// serialized size reflects the 3x optimizer multiplier of a real run).
ckpt::TrainState synthetic_state(const costmodel::ModelConfig& cfg,
                                 const std::vector<int>& counts,
                                 std::size_t cap_floats) {
  ckpt::TrainState state;
  state.step = 1;
  state.adam_t = 1;
  util::Rng rng(17);
  state.data_rng = rng.state();
  state.counts = counts;
  state.scheme_fingerprint = core::scheme_hash(counts);
  for (const costmodel::Block& b : cfg.blocks) {
    const std::size_t floats =
        std::min(cap_floats, static_cast<std::size_t>(b.param_bytes / 4));
    ckpt::ParamState p;
    p.name = b.name;
    p.value.resize(std::max<std::size_t>(floats, 1));
    p.adam_m.resize(p.value.size());
    p.adam_v.resize(p.value.size());
    for (std::size_t i = 0; i < p.value.size(); ++i) {
      p.value[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
      p.adam_m[i] = static_cast<float>(rng.uniform(-0.1, 0.1));
      p.adam_v[i] = static_cast<float>(rng.uniform(0.0, 0.01));
    }
    ckpt::BlockState block;
    block.kind = b.name;
    block.params.push_back(std::move(p));
    state.blocks.push_back(std::move(block));
  }
  return state;
}

std::size_t state_bytes(const ckpt::TrainState& state) {
  std::size_t total = 0;
  for (const auto& b : state.blocks) {
    for (const auto& p : b.params) {
      total += 4 * (p.value.size() + p.adam_m.size() + p.adam_v.size());
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  bench::emit_metadata("ckpt_overhead");
  const int gpus = cli.checked_int("gpus", 4, 1, 64);
  const int repeats = cli.checked_int("repeats", 5, 1, 1000);
  const auto cap_floats = static_cast<std::size_t>(
      cli.checked_int("cap-floats", 65536, 1, 1 << 24));
  const bool quiet = cli.get_bool("quiet", false);

  const std::vector<std::string> models{"gpt2-345m", "gpt2-762m", "gpt2-1.3b",
                                        "bert-large"};
  const std::vector<int> intervals{1, 5, 25};

  const std::string root =
      (std::filesystem::temp_directory_path() / "autopipe_bench_ckpt")
          .string();

  try {
    for (const std::string& model : models) {
      const auto cfg = costmodel::build_model_config(
          costmodel::model_by_name(model), {4, 0, true});
      const auto planned = core::auto_plan(cfg, {gpus, 64, 0, true});
      const double iteration_ms = planned.evaluation.iteration_ms;
      const auto& counts = planned.plan.partition.counts;
      const ckpt::TrainState state = synthetic_state(cfg, counts, cap_floats);

      ckpt::PosixStorage storage;
      const std::string dir = root + "/" + model;
      std::filesystem::remove_all(dir);
      std::vector<double> writes, restores;
      for (int r = 0; r < repeats; ++r) {
        ckpt::CheckpointWriter writer(storage, dir, {1});
        const double w0 = now_ms();
        writer.write(state);
        writes.push_back(now_ms() - w0);
        ckpt::CheckpointReader reader(storage, dir);
        const double r0 = now_ms();
        const auto restored = reader.restore();
        restores.push_back(now_ms() - r0);
        if (!(restored.state == state)) {
          std::fprintf(stderr, "error: %s restore is not bit-identical\n",
                       model.c_str());
          return 1;
        }
      }
      const double write_ms = util::median(writes);
      const double restore_ms = util::median(restores);
      for (int interval : intervals) {
        std::printf(
            "{\"bench\":\"ckpt_overhead\",\"model\":\"%s\",\"gpus\":%d,"
            "\"interval\":%d,\"state_bytes\":%zu,\"write_ms\":%.3f,"
            "\"restore_ms\":%.3f,\"iteration_ms\":%.3f,"
            "\"amortized_pct\":%.4f}\n",
            model.c_str(), gpus, interval, state_bytes(state), write_ms,
            restore_ms, iteration_ms,
            100.0 * write_ms / (interval * iteration_ms));
      }
      if (!quiet) {
        std::fprintf(stderr,
                     "%s: %zu-byte state, write %.2f ms, restore %.2f ms\n",
                     model.c_str(), state_bytes(state), write_ms, restore_ms);
      }
      std::filesystem::remove_all(dir);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
