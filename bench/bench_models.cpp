// Table I: benchmark models, plus the derived per-block cost-model summary
// every other harness consumes.
#include "common.h"

#include "costmodel/model_zoo.h"

int main() {
  using namespace autopipe;
  bench::emit_metadata("models");
  std::printf("Table I -- benchmark models\n\n");
  util::Table t({"Model", "# layers", "Hidden size", "# params (millions)",
                 "seq len", "blocks (sub-layer)"});
  for (const auto& spec : costmodel::model_zoo()) {
    const auto cfg = costmodel::build_model_config(spec, {4, 0, true});
    t.add_row({spec.name, std::to_string(spec.num_layers),
               std::to_string(spec.hidden),
               std::to_string(costmodel::param_count(spec) / 1000000),
               std::to_string(spec.default_seq),
               std::to_string(cfg.num_blocks())});
  }
  std::printf("%s\n", t.to_ascii().c_str());

  std::printf("Derived per-micro-batch cost model (micro-batch 4, RTX-3090 "
              "profile, activation checkpointing):\n\n");
  util::Table c({"Model", "fwd (ms)", "bwd (ms)", "Comm (ms)",
                 "embedding fwd", "attn fwd", "ffn fwd", "head fwd"});
  for (const auto& spec : costmodel::model_zoo()) {
    const auto cfg = costmodel::build_model_config(spec, {4, 0, true});
    c.add_row({spec.name, util::Table::fmt(cfg.total_fwd_ms(), 1),
               util::Table::fmt(cfg.total_bwd_ms(), 1),
               util::Table::fmt(cfg.comm_ms, 3),
               util::Table::fmt(cfg.blocks.front().fwd_ms, 3),
               util::Table::fmt(cfg.blocks[1].fwd_ms, 3),
               util::Table::fmt(cfg.blocks[2].fwd_ms, 3),
               util::Table::fmt(cfg.blocks.back().fwd_ms, 3)});
  }
  std::printf("%s", c.to_ascii().c_str());
  return 0;
}
