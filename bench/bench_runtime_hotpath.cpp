// Runtime hot-path benchmark: naive reference ops vs the blocked/ILP fast
// kernels, per primitive and end-to-end through the pipelined trainer.
//
//   ./bench_runtime_hotpath [--hidden 128] [--seq 16] [--vocab 256]
//                           [--layers 4] [--stages 2] [--micro-batches 8]
//                           [--iters 5] [--reps 5] [--threads 0]
//                           [--assert-speedup 0]
//
// Output is one JSON line per measurement (medians over --reps) plus the
// bench/common.h metadata line, so archived runs stay attributable. The op
// sweep times each primitive at the trainer's dominant shapes; the
// end-to-end rows time whole training iterations with set_fast_ops(false)
// vs (true) on the same model and data.
//
// --assert-speedup S exits non-zero unless the end-to-end fast path is at
// least S times the naive throughput; CI runs a tiny config with S=1.0 as
// a smoke check, EXPERIMENTS.md records the >= 3x protocol.
#include <cstdio>
#include <functional>
#include <vector>

#include "common.h"
#include "core/balanced_dp.h"
#include "model/arena.h"
#include "model/data.h"
#include "model/ops.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"
#include "util/cli.h"
#include "util/stats.h"

namespace {

using namespace autopipe;

double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Median ms over reps runs of fn, first warming up once.
double median_ms(int reps, const std::function<void()>& fn) {
  fn();
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) samples.push_back(time_ms(fn));
  return util::median(samples);
}

void emit_row(const char* op, const char* shape, double naive_ms,
              double fast_ms) {
  std::printf(
      "{\"bench\":\"runtime_hotpath\",\"op\":\"%s\",\"shape\":\"%s\","
      "\"naive_ms\":%.4f,\"fast_ms\":%.4f,\"speedup\":%.2f}\n",
      op, shape, naive_ms, fast_ms, naive_ms / fast_ms);
}

/// Times fn with the fast kernels off, then on; returns {naive, fast}.
std::pair<double, double> naive_vs_fast(int reps,
                                        const std::function<void()>& fn) {
  model::set_fast_ops(false);
  const double naive = median_ms(reps, fn);
  model::set_fast_ops(true);
  const double fast = median_ms(reps, fn);
  return {naive, fast};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  model::TinySpec spec;
  spec.hidden = cli.checked_int("hidden", 128, 8, 4096);
  spec.heads = cli.checked_int("heads", 4, 1, 64);
  spec.seq = cli.checked_int("seq", 16, 2, 4096);
  spec.vocab = cli.checked_int("vocab", 256, 4, 65536);
  spec.layers = cli.checked_int("layers", 4, 1, 64);
  const int stages = cli.checked_int("stages", 2, 1, 16);
  const int m = cli.checked_int("micro-batches", 8, 1, 64);
  const int iters = cli.checked_int("iters", 5, 1, 1000);
  const int reps = cli.checked_int("reps", 5, 1, 100);
  const int B = cli.checked_int("micro-batch", 4, 1, 64);
  const double assert_speedup =
      cli.checked_double("assert-speedup", 0.0, 0.0, 100.0);
  model::set_ops_threads(cli.checked_int("threads", 0, 0, 256));

  bench::emit_metadata("runtime_hotpath");

  // --------------------------------------------------------- op sweep
  // The trainer's dominant GEMM shapes: tokens x hidden activations against
  // hidden x 4*hidden MLP weights, plus the vocab projection.
  const int tokens = B * spec.seq;
  util::Rng rng(42);
  char shape[64];
  {
    const model::Tensor x =
        model::Tensor::randn({tokens, spec.hidden}, rng, 0.02f);
    const model::Tensor w =
        model::Tensor::randn({spec.hidden, 4 * spec.hidden}, rng, 0.02f);
    const model::Tensor dy =
        model::Tensor::randn({tokens, 4 * spec.hidden}, rng, 0.02f);
    std::snprintf(shape, sizeof(shape), "%dx%dx%d", tokens, spec.hidden,
                  4 * spec.hidden);
    auto [n0, f0] = naive_vs_fast(reps, [&] { model::matmul(x, w); });
    emit_row("matmul", shape, n0, f0);
    auto [n1, f1] = naive_vs_fast(reps, [&] { model::matmul_grad_a(dy, w); });
    emit_row("matmul_grad_a", shape, n1, f1);
    auto [n2, f2] = naive_vs_fast(reps, [&] { model::matmul_grad_b(x, dy); });
    emit_row("matmul_grad_b", shape, n2, f2);

    const model::Tensor bias = model::Tensor::randn({4 * spec.hidden}, rng);
    auto [n3, f3] =
        naive_vs_fast(reps, [&] { model::linear(x, w, bias); });
    emit_row("linear", shape, n3, f3);
    auto [n4, f4] =
        naive_vs_fast(reps, [&] { model::linear_backward(x, w, dy); });
    emit_row("linear_backward", shape, n4, f4);
  }
  {
    const model::Tensor x =
        model::Tensor::randn({tokens, 4 * spec.hidden}, rng, 0.02f);
    std::snprintf(shape, sizeof(shape), "%dx%d", tokens, 4 * spec.hidden);
    auto [n0, f0] = naive_vs_fast(reps, [&] { model::gelu(x); });
    emit_row("gelu", shape, n0, f0);
    auto [n1, f1] =
        naive_vs_fast(reps, [&] { model::gelu_backward(x, x); });
    emit_row("gelu_backward", shape, n1, f1);
  }
  {
    const model::Tensor x =
        model::Tensor::randn({tokens, spec.hidden}, rng, 0.02f);
    const model::Tensor gamma = model::Tensor::full({spec.hidden}, 1.0f);
    const model::Tensor beta = model::Tensor({spec.hidden});
    std::snprintf(shape, sizeof(shape), "%dx%d", tokens, spec.hidden);
    model::LayerNormCache cache;
    auto [n0, f0] = naive_vs_fast(
        reps, [&] { model::layernorm(x, gamma, beta, &cache); });
    emit_row("layernorm", shape, n0, f0);
    model::layernorm(x, gamma, beta, &cache);
    auto [n1, f1] = naive_vs_fast(
        reps, [&] { model::layernorm_backward(cache, gamma, x); });
    emit_row("layernorm_backward", shape, n1, f1);
  }
  {
    const model::Tensor logits =
        model::Tensor::randn({tokens, spec.vocab}, rng, 0.5f);
    std::snprintf(shape, sizeof(shape), "%dx%d", tokens, spec.vocab);
    auto [n0, f0] =
        naive_vs_fast(reps, [&] { model::softmax_rows(logits); });
    emit_row("softmax_rows", shape, n0, f0);
    const model::Tensor probs = model::softmax_rows(logits);
    auto [n1, f1] = naive_vs_fast(
        reps, [&] { model::softmax_backward(probs, logits); });
    emit_row("softmax_backward", shape, n1, f1);
    std::vector<int> targets(tokens, 1);
    model::Tensor dlogits;
    auto [n2, f2] = naive_vs_fast(reps, [&] {
      model::cross_entropy(logits, targets, 1.0 / tokens, &dlogits);
    });
    emit_row("cross_entropy", shape, n2, f2);
  }

  // ------------------------------------------------- end-to-end trainer
  // Whole pipelined training iterations (forward + backward + Adam) on the
  // same model/partition/data, naive ops vs fast ops.
  model::TransformerModel net(spec);
  const std::vector<int> counts =
      core::balanced_counts(std::vector<double>(net.num_blocks(), 1.0),
                            stages);
  runtime::PipelineRuntime rt(net, counts);
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::OneFOneB, m, 0);
  model::SyntheticCorpus corpus(spec.vocab);
  const double scale = 1.0 / (B * m * spec.seq);
  runtime::Adam adam(3e-3);
  const auto iteration = [&] {
    const auto batch = corpus.next_batch(B * m, spec.seq);
    const auto micro =
        model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
    net.zero_grads();
    rt.run_iteration(schedule, micro, scale);
    adam.step(net);
  };
  const auto run_iters = [&] {
    for (int i = 0; i < iters; ++i) iteration();
  };

  model::set_fast_ops(false);
  const double naive_ms = median_ms(reps, run_iters) / iters;
  model::set_fast_ops(true);
  const double fast_ms = median_ms(reps, run_iters) / iters;
  const double speedup = naive_ms / fast_ms;
  const auto arena = model::Arena::global().stats();
  std::printf(
      "{\"bench\":\"runtime_hotpath\",\"op\":\"train_iteration\","
      "\"shape\":\"h%d_s%d_v%d_l%d_st%d_m%d\",\"naive_ms\":%.3f,"
      "\"fast_ms\":%.3f,\"speedup\":%.2f,\"arena_hits\":%llu,"
      "\"arena_misses\":%llu,\"arena_high_water_mb\":%.1f,"
      "\"tensor_copies\":%llu}\n",
      spec.hidden, spec.seq, spec.vocab, spec.layers, stages, m, naive_ms,
      fast_ms, speedup, static_cast<unsigned long long>(arena.hits),
      static_cast<unsigned long long>(arena.misses),
      arena.high_water_bytes / (1024.0 * 1024.0),
      static_cast<unsigned long long>(model::ArenaBuffer::copy_count()));

  if (assert_speedup > 0 && speedup < assert_speedup) {
    std::fprintf(stderr,
                 "FAIL: end-to-end speedup %.2fx below required %.2fx\n",
                 speedup, assert_speedup);
    return 1;
  }
  return 0;
}
