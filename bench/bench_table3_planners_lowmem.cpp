// Table III: planner comparison with low memory demand.
//
// GPT-2 345M, micro-batch 4 (fits a single GPU easily), 4 and 16 GPUs,
// global batch 128/256/512. Expected shape: Piper and AutoPipe both pick
// complete data parallelism and tie; DAPPLE insists on a 2-stage pipeline
// (worse at 4 GPUs) and its 16-GPU device assignment exceeds the
// micro-batch size, which errors at runtime ("-" cells).
#include "common.h"

#include "planners/dapple.h"
#include "planners/piper.h"

int main() {
  using namespace autopipe;
  using namespace autopipe::bench;
  emit_metadata("table3_planners_lowmem");
  const int mbs = 4;
  const auto cfg = config_for("gpt2-345m", mbs);
  const std::vector<long> gbs_list{128, 256, 512};

  std::printf("Table III -- planner comparison, low memory demand "
              "(GPT-2 345M, micro-batch %d); time per iteration (ms)\n",
              mbs);
  std::printf("('-' = runtime error, as in the paper)\n\n");

  util::Table t({"# of GPUs", "Alg.", "config", "Gbs=128", "Gbs=256",
                 "Gbs=512", "plan time (ms)"});
  for (int gpus : {4, 16}) {
    struct Row {
      const char* tag;
      core::ParallelPlan plan;
    };
    std::vector<Row> rows;
    rows.push_back({"D", planners::dapple_plan(cfg, gpus, {8, 4, 128})});
    rows.push_back({"P", planners::piper_plan(cfg, gpus, {8, 128})});
    rows.push_back({"A", core::auto_plan(cfg, {gpus, 128, 0, true}).plan});
    for (auto& row : rows) {
      std::vector<std::string> cells{std::to_string(gpus), row.tag};
      std::string config;
      if (row.plan.uniform_dp) {
        config = std::to_string(row.plan.num_stages()) + "st x dp" +
                 std::to_string(row.plan.data_parallel);
      } else {
        config = std::to_string(row.plan.num_stages()) + "st dev[";
        for (int g : row.plan.stage_devices) config += std::to_string(g) + " ";
        config.back() = ']';
      }
      cells.push_back(config);
      for (long gbs : gbs_list) {
        const auto ev = core::evaluate_plan(cfg, row.plan, gbs);
        cells.push_back(ev.runtime_error ? "-"
                        : ev.oom         ? "OOM"
                                 : util::Table::fmt(ev.iteration_ms, 1));
      }
      cells.push_back(util::Table::fmt(row.plan.planning_ms, 1));
      t.add_row(cells);
    }
  }
  show_table(t, "table3_lowmem");
  return 0;
}
