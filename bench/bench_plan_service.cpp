// Plan-service throughput benchmark (EXPERIMENTS.md "Planner as a
// service").
//
// Answers "what does the daemon's cross-request state buy?": an in-process
// seeded request storm -- zoo models with random +-5% block perturbations,
// warm=auto so the plan history seeds drifted re-requests -- is fired at
// one PlanService from --storm-threads client threads, timing every
// handle_line call. One JSON line with the storm shape, throughput and
// latency percentiles, plus the service's own counters (history hits, memo
// lookups/misses, warm-started searches, busy rejections):
//
//   {"bench":"plan_service","requests":200,...,"plans_per_sec":...,
//    "p50_ms":...,"p99_ms":...,"history_hits":...,"warm_planned":...}
//
// Flags: --requests N (default 200), --seed S (default 42), --workers N
// (service planner pool, default 4), --storm-threads N (default 8),
// --max-queue N (default 4096 -- sized so nothing is shed; lower it to
// exercise admission control).
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "service/plan_service.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace autopipe;

/// Seeded request mix: random zoo model / gpu count / warm mode, half the
/// requests perturbed in one block by up to +-5% (the drift that makes
/// warm=auto pay off).
std::vector<std::string> storm_requests(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  const char* models[] = {"gpt2-345m", "gpt2-762m", "bert-large"};
  const char* warms[] = {"off", "auto", "auto", "auto"};
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int gpus = 1 << (1 + rng.next_below(3));
    std::string line = "plan id=b" + std::to_string(i) +
                       " model=" + models[rng.next_below(3)] +
                       " gpus=" + std::to_string(gpus) +
                       " gbs=" + std::to_string(64L << rng.next_below(2)) +
                       " stages=" + std::to_string(gpus) +
                       " warm=" + warms[rng.next_below(4)];
    if (rng.next_below(2) == 0) {
      char buf[64];
      const double f = rng.uniform(0.95, 1.05);
      std::snprintf(buf, sizeof(buf), " perturb=%d:%.4f:%.4f",
                    static_cast<int>(rng.next_below(10)), f, f);
      line += buf;
    }
    out.push_back(line);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int requests = cli.checked_int("requests", 200, 1, 1 << 20);
    const auto seed =
        static_cast<std::uint64_t>(cli.checked_int("seed", 42, 0, 1 << 30));
    const int storm_threads = cli.checked_int("storm-threads", 8, 1, 256);

    service::ServiceOptions opts;
    opts.workers = cli.checked_int("workers", 4, 1, 256);
    opts.max_queue = static_cast<std::size_t>(
        cli.checked_int("max-queue", 4096, 0, 1 << 20));
    service::PlanService service(opts);

    bench::emit_metadata("plan_service");

    const std::vector<std::string> lines = storm_requests(requests, seed);
    std::mutex mu;
    std::vector<double> latencies_ms;
    long ok = 0, busy = 0, errors = 0;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int t = 0; t < storm_threads; ++t) {
      clients.emplace_back([&, t] {
        std::vector<double> local;
        long local_ok = 0, local_busy = 0, local_errors = 0;
        // Static round-robin sharding keeps the request mix (and thus the
        // history-hit rate) independent of thread scheduling.
        for (int i = t; i < requests; i += storm_threads) {
          const auto a = std::chrono::steady_clock::now();
          const std::string reply = service.handle_line(lines[i]);
          const auto b = std::chrono::steady_clock::now();
          local.push_back(
              std::chrono::duration<double, std::milli>(b - a).count());
          if (reply.rfind("ok ", 0) == 0) {
            ++local_ok;
          } else if (reply.rfind("busy ", 0) == 0) {
            ++local_busy;
          } else {
            ++local_errors;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
        ok += local_ok;
        busy += local_busy;
        errors += local_errors;
      });
    }
    for (auto& c : clients) c.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

    const service::ServiceStats stats = service.stats();
    std::printf(
        "{\"bench\":\"plan_service\",\"requests\":%d,\"storm_threads\":%d,"
        "\"workers\":%d,\"seed\":%llu,\"ok\":%ld,\"busy\":%ld,"
        "\"errors\":%ld,\"wall_s\":%.3f,\"plans_per_sec\":%.1f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"planned\":%ld,"
        "\"history_hits\":%ld,\"warm_planned\":%ld,\"memo_lookups\":%ld,"
        "\"memo_misses\":%ld}\n",
        requests, storm_threads, opts.workers,
        static_cast<unsigned long long>(seed), ok, busy, errors, wall_s,
        static_cast<double>(ok) / wall_s,
        util::percentile(latencies_ms, 50), util::percentile(latencies_ms, 99),
        stats.planned, stats.history_hits, stats.warm_planned,
        stats.memo_lookups, stats.memo_misses);
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
